//! # upskill-core
//!
//! A faithful Rust implementation of the models from *"Toward
//! Recommendation for Upskilling: Modeling Skill Improvement and Item
//! Difficulty in Action Sequences"* (Umemoto, Milo, Kitsuregawa — ICDE
//! 2020).
//!
//! Given chronologically ordered **action sequences** — triples
//! `(time, user, item)` where items carry multi-faceted features — the crate
//! learns:
//!
//! 1. a **skill improvement model**: a monotone latent progression of each
//!    user's skill level, trained by alternating a Viterbi-style dynamic
//!    program (assignment step) with closed-form per-cell maximum-likelihood
//!    updates ([`train()`]);
//! 2. **item difficulty estimates** on the same `1..=S` scale, via the mean
//!    assigned skill of selecting users or the posterior-expected skill
//!    level under the generative model ([`difficulty`]).
//!
//! ## Quick example
//!
//! ```
//! use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
//! use upskill_core::types::{Action, ActionSequence, Dataset};
//! use upskill_core::train::{train, TrainConfig};
//! use upskill_core::difficulty::{generation_difficulty, SkillPrior};
//!
//! // Two items described by one categorical feature.
//! let schema = FeatureSchema::new(vec![
//!     FeatureKind::Categorical { cardinality: 2 },
//! ])?;
//! let items = vec![
//!     vec![FeatureValue::Categorical(0)], // "easy"
//!     vec![FeatureValue::Categorical(1)], // "hard"
//! ];
//! // Users select the easy item early and the hard item late.
//! let sequences: Vec<ActionSequence> = (0..4)
//!     .map(|u| {
//!         let actions = (0..8)
//!             .map(|t| Action::new(t, u, if t < 4 { 0 } else { 1 }))
//!             .collect();
//!         ActionSequence::new(u, actions)
//!     })
//!     .collect::<Result<_, _>>()?;
//! let dataset = Dataset::new(schema, items, sequences)?;
//!
//! let config = TrainConfig::new(2).with_min_init_actions(4);
//! let result = train(&dataset, &config)?;
//! assert!(result.assignments.is_monotone());
//!
//! let d_hard = generation_difficulty(
//!     &result.model,
//!     dataset.item_features(1),
//!     SkillPrior::Empirical,
//!     Some(&result.assignments),
//! )?;
//! let d_easy = generation_difficulty(
//!     &result.model,
//!     dataset.item_features(0),
//!     SkillPrior::Empirical,
//!     Some(&result.assignments),
//! )?;
//! assert!(d_hard > d_easy);
//! # Ok::<(), upskill_core::error::CoreError>(())
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`types`] | §III | users, items, actions, datasets |
//! | [`feature`] | §III | multi-faceted feature schema |
//! | [`dist`] | §IV-A | categorical/Poisson/gamma/log-normal families |
//! | [`model`] | §IV-A (Eq. 2) | the `S × F` skill model |
//! | [`assign`] | §IV-B (Eq. 4) | monotone DP assignment |
//! | [`emission`] | §IV (Eq. 2) | shared item × skill emission table |
//! | [`update`] | §IV-B (Eq. 5–7) | closed-form parameter updates |
//! | [`init`] | §IV-B | uniform-segmentation initialization |
//! | [`mod@train`] | §IV-B | the alternating trainer |
//! | [`incremental`] | §IV-B | delta sufficient statistics (`StatsGrid`) |
//! | [`chunked`] | §IV-C | out-of-core chunked datasets & sharded training |
//! | [`parallel`] | §IV-C | user/skill/feature parallel steps |
//! | [`difficulty`] | §V | assignment- & generation-based estimators |
//! | [`model_selection`] | §VI-B (Fig. 3) | held-out skill-count selection |
//! | [`predict`] | §VI-E | item-prediction protocol |
//! | [`baselines`] | §VI-D | Uniform & ID (Yang et al.) baselines |
//! | [`analysis`] | §VI-C | dominance scores, per-level summaries |
//! | [`recommend`] | Fig. 1 / §VII | upskilling recommendations & curriculum ladder |
//! | [`policy`] | §VII (AdUp) | adaptive teach/motivate/hybrid re-ranking over bands |
//! | [`online`] | — | O(F·S)-per-action incremental skill tracking |
//! | [`streaming`] | §IV, §VI | live ingestion sessions over a trained model |
//! | [`epoch`] | — | epoch-published snapshots for read-mostly serving state |
//! | [`pool`] | — | reusable workspace pooling across concurrent requests |
//! | [`sync`] | — | lock-discipline primitives + deterministic schedule explorer |
//! | [`forgetting`] | §VII | Ebbinghaus-style skill decay in the DP |
//! | [`transition`] | §VII | probabilistic stay/advance extension |
//! | [`em`] | §IV-B | soft-assignment (EM) trainer for comparison |
//! | [`bundle`] | — | versioned trained-model artifacts (JSON) |
//! | [`diagnostics`] | — | feature informativeness (KL), convergence health |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod assign;
pub mod baselines;
pub mod bundle;
pub mod chunked;
pub mod diagnostics;
pub mod difficulty;
pub mod dist;
pub mod em;
pub mod emission;
pub mod epoch;
pub mod error;
pub mod feature;
pub mod float_cmp;
pub mod forgetting;
pub mod incremental;
pub mod init;
pub mod invariants;
pub mod model;
pub mod model_selection;
pub mod online;
pub mod parallel;
pub mod policy;
pub mod pool;
pub mod predict;
pub mod prelude;
pub mod recommend;
pub mod rng;
pub mod streaming;
pub mod sync;
pub mod train;
pub mod transition;
pub mod types;
pub mod update;

pub use chunked::{
    assign_chunked, initialize_model_chunked, level_histogram_chunked, materialize, train_chunked,
    train_em_chunked, AssignmentStorage, ChunkSource, ChunkedDataset, ChunkedTrainResult,
    DatasetChunk, DatasetChunks,
};
pub use emission::EmissionTable;
pub use epoch::EpochCell;
pub use error::{CoreError, Result};
pub use invariants::InvariantCtx;
pub use model::SkillModel;
pub use pool::{PoolGuard, WorkspacePool};
pub use streaming::{RefitPolicy, RefitTuner, StreamingSession};
pub use sync::{LockId, TracedGuard, TracedMutex};
pub use train::{train, train_with_parallelism, TrainConfig, TrainResult, Trainer};
pub use types::{Action, ActionSequence, Dataset, SkillAssignments};
