//! Soft-assignment (EM) training — the comparison point the paper cites
//! when motivating hard assignments (§IV-B: hard assignment was reported to
//! run ~1000× faster than EM with comparable fitting quality).
//!
//! The E-step runs forward–backward over the monotone stay/advance lattice
//! with an explicit [`TransitionModel`], producing per-action posterior
//! marginals `γ(n, s)`; the M-step refits every distribution from
//! *weighted* sufficient statistics. This module exists to let the
//! benchmarks quantify the hard-vs-soft trade-off on the same substrate.
//!
//! ## Responsibility-delta incremental EM
//!
//! By default (`ParallelConfig::incremental`) the loop mirrors the hard
//! trainer's persistent-histogram optimization: a
//! [`SoftStatsGrid`] carries the
//! per-`(level, item)` responsibility mass across iterations, each E-step
//! applies only the *delta* of posteriors that moved past
//! [`EmConfig::gamma_tolerance`], the M-step replays the grid item-major
//! (`O(S · n_items · F)` weighted pushes instead of `O(|A| · S · F)`) and
//! refits only dirty levels, and one persistent [`EmissionTable`] is
//! column-refreshed instead of rebuilt. Disabling the flag runs the
//! legacy from-scratch accumulation — the measurable baseline for
//! `bench_em_incremental`.

use crate::dist::{Categorical, FeatureDistribution, Gamma, LogNormal, Poisson, DEFAULT_SMOOTHING};
use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::feature::{FeatureKind, FeatureValue, PositiveModel};
use crate::incremental::SoftStatsGrid;
use crate::model::SkillModel;
use crate::parallel::ParallelConfig;
use crate::transition::TransitionModel;
use crate::types::{skill_level_from_index, ActionSequence, Dataset, ItemId, SkillLevel};

/// Default gate for responsibility deltas: posterior rows that move less
/// than this between iterations keep their previous contribution. Small
/// enough that gated error stays far below the trainer's convergence
/// tolerance, large enough to skip actions whose posteriors have settled
/// to machine precision.
pub const DEFAULT_GAMMA_TOLERANCE: f64 = 1e-12;

/// Numerically stable `log(Σ exp(x_i))`.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f64>().ln()
}

/// Posterior skill marginals for one sequence: `gammas[n][s-1]`.
///
/// Evaluates emissions directly. When running forward–backward over many
/// sequences against one model (as [`train_em_with_parallelism`] does
/// every iteration),
/// prefer [`forward_backward_with_table`].
pub fn forward_backward(
    model: &SkillModel,
    transitions: &TransitionModel,
    dataset: &Dataset,
    sequence: &ActionSequence,
) -> Result<(Vec<Vec<f64>>, f64)> {
    let s_max = model.n_levels();
    if transitions.n_levels() != s_max {
        return Err(CoreError::LengthMismatch {
            context: "transitions vs model levels",
            left: transitions.n_levels(),
            right: s_max,
        });
    }
    let n = sequence.len();
    if n == 0 {
        return Ok((Vec::new(), 0.0));
    }
    let emit: Vec<Vec<f64>> = sequence
        .actions()
        .iter()
        .map(|a| model.item_log_likelihoods(dataset.item_features(a.item)))
        .collect();
    forward_backward_rows(s_max, transitions, n, |t| emit[t].as_slice())
}

/// Forward–backward reading emissions from a precomputed [`EmissionTable`].
///
/// Produces exactly the same marginals and evidence as
/// [`forward_backward`] with the model the table was built from, without
/// the per-action `item_log_likelihoods` allocations.
pub fn forward_backward_with_table(
    table: &EmissionTable,
    transitions: &TransitionModel,
    sequence: &ActionSequence,
) -> Result<(Vec<Vec<f64>>, f64)> {
    let s_max = table.n_levels();
    if transitions.n_levels() != s_max {
        return Err(CoreError::LengthMismatch {
            context: "transitions vs model levels",
            left: transitions.n_levels(),
            right: s_max,
        });
    }
    let n = sequence.len();
    if n == 0 {
        return Ok((Vec::new(), 0.0));
    }
    let actions = sequence.actions();
    for action in actions {
        if action.item as usize >= table.n_items() {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: action.item as usize,
                len: table.n_items(),
            });
        }
    }
    forward_backward_rows(s_max, transitions, n, |t| table.row(actions[t].item))
}

/// The forward–backward recursion over abstract emission rows; both the
/// direct and table-backed entry points funnel through this implementation.
fn forward_backward_rows<'a, F>(
    s_max: usize,
    transitions: &TransitionModel,
    n: usize,
    row_of: F,
) -> Result<(Vec<Vec<f64>>, f64)>
where
    F: Fn(usize) -> &'a [f64],
{
    let emit: Vec<&[f64]> = (0..n).map(&row_of).collect();

    // Forward (log alpha).
    let mut alpha = vec![vec![f64::NEG_INFINITY; s_max]; n];
    for s in 0..s_max {
        alpha[0][s] = transitions.log_init((s + 1) as SkillLevel) + emit[0][s];
    }
    for t in 1..n {
        for s in 0..s_max {
            let stay = alpha[t - 1][s] + transitions.log_stay((s + 1) as SkillLevel);
            let up = if s > 0 {
                alpha[t - 1][s - 1] + transitions.log_advance(s as SkillLevel)
            } else {
                f64::NEG_INFINITY
            };
            alpha[t][s] = log_sum_exp(&[stay, up]) + emit[t][s];
        }
    }
    let log_evidence = log_sum_exp(&alpha[n - 1]);
    if !log_evidence.is_finite() {
        return Err(CoreError::DegenerateFit {
            distribution: "forward-backward",
            reason: "zero total probability; enable smoothing",
        });
    }

    // Backward (log beta).
    let mut beta = vec![vec![0.0f64; s_max]; n];
    for t in (0..n - 1).rev() {
        for s in 0..s_max {
            let stay =
                transitions.log_stay((s + 1) as SkillLevel) + emit[t + 1][s] + beta[t + 1][s];
            let up = if s + 1 < s_max {
                transitions.log_advance((s + 1) as SkillLevel)
                    + emit[t + 1][s + 1]
                    + beta[t + 1][s + 1]
            } else {
                f64::NEG_INFINITY
            };
            beta[t][s] = log_sum_exp(&[stay, up]);
        }
    }

    // Marginals.
    let mut gammas = vec![vec![0.0f64; s_max]; n];
    for t in 0..n {
        let mut row: Vec<f64> = (0..s_max).map(|s| alpha[t][s] + beta[t][s]).collect();
        let norm = log_sum_exp(&row);
        for v in row.iter_mut() {
            *v = (*v - norm).exp();
        }
        gammas[t] = row;
    }
    Ok((gammas, log_evidence))
}

/// Reusable flat buffers for table-backed forward–backward.
///
/// The legacy [`forward_backward_with_table`] allocates three
/// `Vec<Vec<f64>>` lattices per sequence per iteration — hundreds of
/// thousands of small allocations per EM pass at the acceptance
/// workload, which dominates the E-step. The incremental path runs the
/// identical recursion (same operation order, bitwise-identical
/// marginals and evidence) through these buffers, resized once and
/// reused across every sequence of every iteration. The per-level
/// transition log-probabilities are hoisted at construction: the
/// transition model stays fixed for a whole EM run.
pub struct FbWorkspace {
    /// Flat `n × s_max` forward lattice (log alpha).
    alpha: Vec<f64>,
    /// Flat `n × s_max` backward lattice (log beta).
    beta: Vec<f64>,
    /// Flat `n × s_max` posterior marginals of the last pass.
    gamma: Vec<f64>,
    /// Hoisted `log P(stay at s+1)` per zero-based level.
    log_stay: Vec<f64>,
    /// Hoisted `log P(advance from s+1)` per zero-based level.
    log_advance: Vec<f64>,
    /// Hoisted `log P(initial level = s+1)` per zero-based level.
    log_init: Vec<f64>,
}

impl FbWorkspace {
    /// Builds a workspace for one transition model, hoisting its
    /// per-level log-probabilities; the DP buffers grow lazily on the
    /// first run and are reused afterwards.
    pub fn new(transitions: &TransitionModel) -> Self {
        let s_max = transitions.n_levels();
        let level = |s: usize| (s + 1) as SkillLevel;
        Self {
            alpha: Vec::new(),
            beta: Vec::new(),
            gamma: Vec::new(),
            log_stay: (0..s_max).map(|s| transitions.log_stay(level(s))).collect(),
            log_advance: (0..s_max)
                .map(|s| transitions.log_advance(level(s)))
                .collect(),
            log_init: (0..s_max).map(|s| transitions.log_init(level(s))).collect(),
        }
    }

    /// Flat posterior marginals of the last [`run`](Self::run) /
    /// [`run_items`](Self::run_items) pass (row-major, `n × s_max`).
    pub fn gamma(&self) -> &[f64] {
        &self.gamma
    }

    /// Runs forward–backward for one sequence, leaving the flat posterior
    /// marginals in `self.gamma` (row-major, `seq.len() × s_max`) and
    /// returning the log evidence. Produces exactly the values of
    /// [`forward_backward_with_table`].
    pub fn run(&mut self, table: &EmissionTable, seq: &ActionSequence) -> Result<f64> {
        let actions = seq.actions();
        self.run_rows(table, actions.len(), |t| actions[t].item)
    }

    /// Item-slice twin of [`run`](Self::run) for columnar chunk storage
    /// (no [`ActionSequence`] wrappers). Identical recursion, identical
    /// operation order: bitwise-equal marginals and evidence for the same
    /// item sequence.
    pub fn run_items(&mut self, table: &EmissionTable, items: &[ItemId]) -> Result<f64> {
        self.run_rows(table, items.len(), |t| items[t])
    }

    /// Shared forward–backward core over `item_at(0..n)`.
    fn run_rows(
        &mut self,
        table: &EmissionTable,
        n: usize,
        item_at: impl Fn(usize) -> ItemId,
    ) -> Result<f64> {
        let s_max = self.log_stay.len();
        if table.n_levels() != s_max {
            return Err(CoreError::LengthMismatch {
                context: "transitions vs model levels",
                left: s_max,
                right: table.n_levels(),
            });
        }
        if n == 0 {
            self.gamma.clear();
            return Ok(0.0);
        }
        for t in 0..n {
            let item = item_at(t) as usize;
            if item >= table.n_items() {
                return Err(CoreError::FeatureIndexOutOfBounds {
                    index: item,
                    len: table.n_items(),
                });
            }
        }
        let cells = n * s_max;
        self.alpha.clear();
        self.alpha.resize(cells, f64::NEG_INFINITY);
        self.beta.clear();
        self.beta.resize(cells, 0.0);
        self.gamma.clear();
        self.gamma.resize(cells, 0.0);

        // Forward (log alpha); same recursion as `forward_backward_rows`.
        let first = table.row(item_at(0));
        for ((a, &li), &e) in self.alpha[..s_max]
            .iter_mut()
            .zip(&self.log_init)
            .zip(first)
        {
            *a = li + e;
        }
        for t in 1..n {
            let emit = table.row(item_at(t));
            let (prev, curr) = self.alpha.split_at_mut(t * s_max);
            let prev = &prev[(t - 1) * s_max..];
            let curr = &mut curr[..s_max];
            for s in 0..s_max {
                let stay = prev[s] + self.log_stay[s];
                let up = if s > 0 {
                    prev[s - 1] + self.log_advance[s - 1]
                } else {
                    f64::NEG_INFINITY
                };
                curr[s] = log_sum_exp(&[stay, up]) + emit[s];
            }
        }
        let log_evidence = log_sum_exp(&self.alpha[(n - 1) * s_max..]);
        if !log_evidence.is_finite() {
            return Err(CoreError::DegenerateFit {
                distribution: "forward-backward",
                reason: "zero total probability; enable smoothing",
            });
        }

        // Backward (log beta).
        for t in (0..n - 1).rev() {
            let emit = table.row(item_at(t + 1));
            let (curr, next) = self.beta.split_at_mut((t + 1) * s_max);
            let curr = &mut curr[t * s_max..];
            let next = &next[..s_max];
            for s in 0..s_max {
                let stay = self.log_stay[s] + emit[s] + next[s];
                let up = if s + 1 < s_max {
                    self.log_advance[s] + emit[s + 1] + next[s + 1]
                } else {
                    f64::NEG_INFINITY
                };
                curr[s] = log_sum_exp(&[stay, up]);
            }
        }

        // Marginals.
        for ((g_row, a_row), b_row) in self
            .gamma
            .chunks_mut(s_max)
            .zip(self.alpha.chunks(s_max))
            .zip(self.beta.chunks(s_max))
        {
            for ((g, &a), &b) in g_row.iter_mut().zip(a_row).zip(b_row) {
                *g = a + b;
            }
            let norm = log_sum_exp(g_row);
            for g in g_row.iter_mut() {
                *g = (*g - norm).exp();
            }
        }
        Ok(log_evidence)
    }
}

/// Weighted per-cell statistics for the M-step (also replayed by
/// [`SoftStatsGrid::fit_model_incremental`]).
pub(crate) enum WeightedAcc {
    Categorical {
        weights: Vec<f64>,
    },
    Count {
        sum: f64,
        weight: f64,
    },
    Positive {
        model: PositiveModel,
        w: f64,
        wx: f64,
        wlnx: f64,
        wlnx2: f64,
    },
}

impl WeightedAcc {
    pub(crate) fn new(kind: FeatureKind) -> Self {
        match kind {
            FeatureKind::Categorical { cardinality } => WeightedAcc::Categorical {
                weights: vec![0.0; cardinality as usize],
            },
            FeatureKind::Count => WeightedAcc::Count {
                sum: 0.0,
                weight: 0.0,
            },
            FeatureKind::Positive { model } => WeightedAcc::Positive {
                model,
                w: 0.0,
                wx: 0.0,
                wlnx: 0.0,
                wlnx2: 0.0,
            },
        }
    }

    pub(crate) fn push(&mut self, value: &FeatureValue, weight: f64) -> Result<()> {
        match (self, value) {
            (WeightedAcc::Categorical { weights }, FeatureValue::Categorical(c)) => {
                let idx = *c as usize;
                if idx >= weights.len() {
                    return Err(CoreError::CategoryOutOfBounds {
                        feature: usize::MAX,
                        value: *c,
                        cardinality: weights.len() as u32,
                    });
                }
                weights[idx] += weight;
                Ok(())
            }
            (WeightedAcc::Count { sum, weight: w }, FeatureValue::Count(k)) => {
                *sum += weight * *k as f64;
                *w += weight;
                Ok(())
            }
            (
                WeightedAcc::Positive {
                    w, wx, wlnx, wlnx2, ..
                },
                FeatureValue::Real(x),
            ) => {
                let lx = x.ln();
                *w += weight;
                *wx += weight * x;
                *wlnx += weight * lx;
                *wlnx2 += weight * lx * lx;
                Ok(())
            }
            _ => Err(CoreError::FeatureKindMismatch {
                feature: usize::MAX,
                expected: "matching",
                got: "mismatched",
            }),
        }
    }

    pub(crate) fn fit(&self, lambda: f64) -> Result<FeatureDistribution> {
        match self {
            WeightedAcc::Categorical { weights } => {
                let total: f64 = weights.iter().sum();
                let denom = total + lambda * weights.len() as f64;
                if denom <= 0.0 {
                    return FeatureDistribution::fallback(FeatureKind::Categorical {
                        cardinality: weights.len() as u32,
                    });
                }
                let probs: Vec<f64> = weights.iter().map(|&w| (w + lambda) / denom).collect();
                Ok(FeatureDistribution::Categorical(Categorical::from_probs(
                    probs,
                )?))
            }
            WeightedAcc::Count { sum, weight } => {
                if *weight <= 0.0 {
                    return FeatureDistribution::fallback(FeatureKind::Count);
                }
                Ok(FeatureDistribution::Poisson(Poisson::new(
                    (sum / weight).max(crate::dist::poisson::MIN_RATE),
                )?))
            }
            WeightedAcc::Positive {
                model,
                w,
                wx,
                wlnx,
                wlnx2,
            } => {
                if *w <= 0.0 {
                    return FeatureDistribution::fallback(FeatureKind::Positive { model: *model });
                }
                match model {
                    PositiveModel::Gamma => {
                        let m = wx / w;
                        let mean_ln = wlnx / w;
                        let s = (m.ln() - mean_ln).max(0.0);
                        if s < 1e-12 {
                            let shape = 1e6;
                            return Ok(FeatureDistribution::Gamma(Gamma::new(shape, m / shape)?));
                        }
                        // Same generalized-Newton iteration as the unweighted fit.
                        let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
                        for _ in 0..200 {
                            let num = m.ln() - mean_ln + k.ln() - crate::dist::special::digamma(k);
                            let den = k * k * (1.0 / k - crate::dist::special::trigamma(k));
                            let inv = 1.0 / k + num / den;
                            if !inv.is_finite() || inv <= 0.0 {
                                break;
                            }
                            let k_new = 1.0 / inv;
                            let delta = (k_new - k).abs() / k.max(1.0);
                            k = k_new;
                            if delta < 1e-10 {
                                break;
                            }
                        }
                        Ok(FeatureDistribution::Gamma(Gamma::new(k, m / k)?))
                    }
                    PositiveModel::LogNormal => {
                        let mu = wlnx / w;
                        let var = (wlnx2 / w - mu * mu).max(0.0);
                        Ok(FeatureDistribution::LogNormal(LogNormal::new(
                            mu,
                            var.sqrt().max(1e-6),
                        )?))
                    }
                }
            }
        }
    }
}

/// Result of EM training.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// The fitted model.
    pub model: SkillModel,
    /// Per-iteration data log-evidence (non-decreasing up to tolerance).
    pub evidence_trace: Vec<f64>,
    /// Whether the evidence improvement dropped below tolerance.
    pub converged: bool,
}

/// Hyperparameters of the EM trainer, mirroring
/// [`TrainConfig`](crate::train::TrainConfig) so the two trainers share
/// the `(dataset, config, parallel)` calling convention.
///
/// `initial` seeds the parameters (e.g. from
/// [`crate::init::initialize_model`]); `transitions` stays fixed (refitting
/// it is possible but the comparison benches keep the Yang-style
/// uninformative transitions).
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Seed model; its level count defines `S`.
    pub initial: SkillModel,
    /// Fixed stay/advance transition probabilities.
    pub transitions: TransitionModel,
    /// Categorical smoothing pseudo-count `λ` (default 0.01).
    pub lambda: f64,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the relative evidence improvement drops below this.
    pub tolerance: f64,
    /// Responsibility-delta gate for the incremental path (default
    /// [`DEFAULT_GAMMA_TOLERANCE`]): an action's posterior row is
    /// reapplied to the [`SoftStatsGrid`] only when some level moved by
    /// more than this. `0.0` applies every change (exact up to summation
    /// order); ignored when `ParallelConfig::incremental` is off.
    pub gamma_tolerance: f64,
}

impl EmConfig {
    /// Config with the default smoothing, iteration cap, and tolerance.
    pub fn new(initial: SkillModel, transitions: TransitionModel) -> Self {
        Self {
            initial,
            transitions,
            lambda: DEFAULT_SMOOTHING,
            max_iterations: 100,
            tolerance: 1e-8,
            gamma_tolerance: DEFAULT_GAMMA_TOLERANCE,
        }
    }

    /// Overrides the smoothing pseudo-count.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Overrides the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Overrides the responsibility-delta gate of the incremental path.
    pub fn with_gamma_tolerance(mut self, gamma_tolerance: f64) -> Self {
        self.gamma_tolerance = gamma_tolerance;
        self
    }
}

/// Trains a skill model by EM with soft assignments, with the same
/// `(dataset, config, parallel)` argument order as
/// [`crate::train::train_with_parallelism`].
///
/// Parallelism applies to the per-iteration emission-table build (the
/// `users`/`threads` flags); results are identical for any configuration.
pub fn train_em_with_parallelism(
    dataset: &Dataset,
    config: &EmConfig,
    parallel: &ParallelConfig,
) -> Result<EmResult> {
    parallel.validate()?;
    run_em(
        dataset,
        config.initial.clone(),
        &config.transitions,
        config.lambda,
        config.max_iterations,
        config.tolerance,
        config.gamma_tolerance,
        parallel,
    )
}

/// The EM loop behind the public entry point: dispatches between the
/// responsibility-delta incremental path (the default) and the legacy
/// from-scratch accumulation, per `ParallelConfig::incremental`.
#[allow(clippy::too_many_arguments)]
fn run_em(
    dataset: &Dataset,
    initial: SkillModel,
    transitions: &TransitionModel,
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
    gamma_tolerance: f64,
    parallel: &ParallelConfig,
) -> Result<EmResult> {
    if dataset.n_actions() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    if parallel.incremental {
        run_em_incremental(
            dataset,
            initial,
            transitions,
            lambda,
            max_iterations,
            tolerance,
            gamma_tolerance,
            parallel,
        )
    } else {
        run_em_full(
            dataset,
            initial,
            transitions,
            lambda,
            max_iterations,
            tolerance,
            parallel,
        )
    }
}

/// Legacy from-scratch EM: rebuilds the emission table and re-accumulates
/// every action's weighted statistics each iteration. Kept as the
/// measurable baseline for `bench_em_incremental`.
fn run_em_full(
    dataset: &Dataset,
    initial: SkillModel,
    transitions: &TransitionModel,
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
    parallel: &ParallelConfig,
) -> Result<EmResult> {
    let n_levels = initial.n_levels();
    let schema = dataset.schema().clone();
    let mut model = initial;
    let mut trace = Vec::new();
    let mut converged = false;

    for _ in 0..max_iterations {
        // E-step: accumulate weighted stats over all sequences.
        let mut grid: Vec<Vec<WeightedAcc>> = (0..n_levels)
            .map(|_| {
                schema
                    .kinds()
                    .iter()
                    .map(|&k| WeightedAcc::new(k))
                    .collect()
            })
            .collect();
        // One emission table per iteration: the E-step revisits every
        // action but only n_items × S distinct emission values exist.
        let table = if parallel.users && parallel.threads > 1 {
            EmissionTable::build_parallel(&model, dataset, parallel.threads)?
        } else {
            EmissionTable::build(&model, dataset)
        };
        crate::invariants::InvariantCtx::new().check_emission_table(&table)?;
        let mut evidence = 0.0;
        for seq in dataset.sequences() {
            let (gammas, log_ev) = forward_backward_with_table(&table, transitions, seq)?;
            evidence += log_ev;
            for (action, gamma) in seq.actions().iter().zip(&gammas) {
                let features = dataset.item_features(action.item);
                for (s, &weight) in gamma.iter().enumerate() {
                    if weight <= 0.0 {
                        continue;
                    }
                    for (acc, value) in grid[s].iter_mut().zip(features) {
                        acc.push(value, weight)?;
                    }
                }
            }
        }
        trace.push(evidence);

        // M-step.
        let cells: Vec<Vec<FeatureDistribution>> = grid
            .iter()
            .map(|row| row.iter().map(|acc| acc.fit(lambda)).collect())
            .collect::<Result<_>>()?;
        model = SkillModel::new(schema.clone(), n_levels, cells)?;

        if trace.len() >= 2 {
            let prev = trace[trace.len() - 2];
            let curr = trace[trace.len() - 1];
            if (curr - prev).abs() <= tolerance * prev.abs().max(1.0) {
                converged = true;
                break;
            }
        }
    }
    Ok(EmResult {
        model,
        evidence_trace: trace,
        converged,
    })
}

/// Responsibility-delta incremental EM (module docs, "Responsibility-delta
/// incremental EM").
///
/// Invariants relative to [`run_em_full`]:
/// - The E-step is identical (same forward–backward over the same table
///   values), so the evidence trace differs only through the slightly
///   different models the gated M-step produces — bounded by
///   `gamma_tolerance` per action per level.
/// - Deltas and replay run sequentially on the calling thread and the
///   parallel table build is bitwise identical to the sequential one, so
///   results are deterministic and independent of `threads`.
#[allow(clippy::too_many_arguments)]
fn run_em_incremental(
    dataset: &Dataset,
    initial: SkillModel,
    transitions: &TransitionModel,
    lambda: f64,
    max_iterations: usize,
    tolerance: f64,
    gamma_tolerance: f64,
    parallel: &ParallelConfig,
) -> Result<EmResult> {
    let n_levels = initial.n_levels();
    let schema = dataset.schema().clone();
    let mut model = initial;
    let mut trace = Vec::new();
    let mut converged = false;

    // One persistent emission table for the whole run; after the first
    // build only the columns of refit (dirty) levels are recomputed.
    let mut table = if parallel.users && parallel.threads > 1 {
        EmissionTable::build_parallel(&model, dataset, parallel.threads)?
    } else {
        EmissionTable::build(&model, dataset)
    };
    crate::invariants::InvariantCtx::new().check_emission_table(&table)?;

    let mut grid = SoftStatsGrid::new(
        n_levels,
        dataset.n_items(),
        dataset.n_actions(),
        gamma_tolerance,
    )?;
    // Working copy of the current cells: clean levels keep their previous
    // distributions bit for bit without re-reading the model.
    let mut cells: Vec<Vec<FeatureDistribution>> = (0..n_levels)
        .map(|s| {
            model
                .level_row(skill_level_from_index(s))
                .map(<[FeatureDistribution]>::to_vec)
        })
        .collect::<Result<_>>()?;

    // Flat forward–backward buffers reused across every sequence of every
    // iteration, with per-level transition log-probabilities hoisted once
    // for the whole run (the transition model is fixed under this EM).
    let mut workspace = FbWorkspace::new(transitions);

    for _ in 0..max_iterations {
        // E-step: forward–backward per sequence, then apply only the
        // responsibility deltas of actions whose posterior moved.
        let mut evidence = 0.0;
        let mut action_idx = 0usize;
        for seq in dataset.sequences() {
            evidence += workspace.run(&table, seq)?;
            for (action, gamma) in seq.actions().iter().zip(workspace.gamma.chunks(n_levels)) {
                grid.update_action(action_idx, action.item, gamma)?;
                action_idx += 1;
            }
        }
        trace.push(evidence);

        // M-step: replay only dirty levels, item-major through the
        // weighted accumulators — O(S_dirty · n_items · F).
        for (row, (s, &is_dirty)) in cells.iter_mut().zip(grid.dirty_levels().iter().enumerate()) {
            if !is_dirty {
                continue;
            }
            let mut accs: Vec<WeightedAcc> = schema
                .kinds()
                .iter()
                .map(|&k| WeightedAcc::new(k))
                .collect();
            for (features, &w) in dataset.items().iter().zip(grid.level_weights(s)) {
                if w <= 0.0 {
                    continue;
                }
                for (acc, value) in accs.iter_mut().zip(features) {
                    acc.push(value, w)?;
                }
            }
            *row = accs.iter().map(|a| a.fit(lambda)).collect::<Result<_>>()?;
        }
        model = SkillModel::new(schema.clone(), n_levels, cells.clone())?;

        // Refresh only the emission columns of refit levels.
        table.refresh_levels(&model, dataset, grid.dirty_levels())?;
        crate::invariants::InvariantCtx::new().check_emission_table(&table)?;
        grid.clear_dirty();

        if trace.len() >= 2 {
            let prev = trace[trace.len() - 2];
            let curr = trace[trace.len() - 1];
            if (curr - prev).abs() <= tolerance * prev.abs().max(1.0) {
                converged = true;
                break;
            }
        }
    }
    Ok(EmResult {
        model,
        evidence_trace: trace,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema};
    use crate::init::initialize_model;
    use crate::types::{Action, ActionSequence};

    fn progression_dataset() -> Dataset {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let sequences: Vec<ActionSequence> = (0..6u32)
            .map(|u| {
                ActionSequence::new(
                    u,
                    (0..10)
                        .map(|t| Action::new(t, u, u32::from(t >= 5)))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn log_sum_exp_basics() {
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
        let big = log_sum_exp(&[1000.0, 1000.0]);
        assert!((big - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn forward_backward_marginals_normalize() {
        let ds = progression_dataset();
        let model = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let (gammas, ev) = forward_backward(&model, &trans, &ds, &ds.sequences()[0]).unwrap();
        assert!(ev.is_finite());
        for row in &gammas {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Early actions should lean level 1, late actions level 2.
        assert!(gammas[0][0] > gammas[0][1]);
        assert!(gammas[9][1] > gammas[9][0]);
    }

    #[test]
    fn table_backed_forward_backward_matches_direct() {
        let ds = progression_dataset();
        let model = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let table = EmissionTable::build(&model, &ds);
        for seq in ds.sequences() {
            let (g_direct, ev_direct) = forward_backward(&model, &trans, &ds, seq).unwrap();
            let (g_table, ev_table) = forward_backward_with_table(&table, &trans, seq).unwrap();
            assert_eq!(g_direct, g_table);
            assert_eq!(ev_direct, ev_table);
        }
        // Item ids outside the table are rejected, not read out of bounds.
        let rogue = ActionSequence::new(99, vec![Action::new(0, 99, 77)]).unwrap();
        assert!(forward_backward_with_table(&table, &trans, &rogue).is_err());
    }

    #[test]
    fn em_evidence_is_monotone_without_smoothing() {
        // With λ = 0 the M-step is the exact evidence maximizer, so EM's
        // classic monotonicity guarantee holds. (With λ > 0 the M-step
        // optimizes a regularized objective and tiny decreases are normal.)
        let ds = progression_dataset();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let cfg = EmConfig::new(initial, trans)
            .with_lambda(0.0)
            .with_max_iterations(20)
            .with_tolerance(1e-9);
        let result = train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        for w in result.evidence_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "evidence decreased: {:?}",
                result.evidence_trace
            );
        }
    }

    #[test]
    fn em_with_smoothing_converges() {
        let ds = progression_dataset();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let cfg = EmConfig::new(initial, trans)
            .with_max_iterations(50)
            .with_tolerance(1e-9);
        let result = train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        assert!(result.converged);
        let last = result.evidence_trace.len() - 1;
        let delta = (result.evidence_trace[last] - result.evidence_trace[last - 1]).abs();
        assert!(delta < 1e-6, "trace: {:?}", result.evidence_trace);
    }

    #[test]
    fn em_learns_level_separation() {
        let ds = progression_dataset();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let cfg = EmConfig::new(initial, trans)
            .with_max_iterations(30)
            .with_tolerance(1e-10);
        let result = train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let easy = vec![FeatureValue::Categorical(0)];
        let hard = vec![FeatureValue::Categorical(1)];
        assert!(
            result.model.item_log_likelihood(&easy, 1) > result.model.item_log_likelihood(&easy, 2)
        );
        assert!(
            result.model.item_log_likelihood(&hard, 2) > result.model.item_log_likelihood(&hard, 1)
        );
    }

    #[test]
    fn em_and_hard_training_agree_on_clear_data() {
        let ds = progression_dataset();
        let cfg = crate::train::TrainConfig::new(2).with_min_init_actions(5);
        let hard = crate::train::train(&ds, &cfg).unwrap();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let em_cfg = EmConfig::new(initial, trans)
            .with_max_iterations(30)
            .with_tolerance(1e-10);
        let soft = train_em_with_parallelism(&ds, &em_cfg, &ParallelConfig::sequential()).unwrap();
        // Both should agree on which level generates which item.
        for (features, _) in ds.items().iter().zip(0..) {
            let hard_best = (1..=2u8)
                .max_by(|&a, &b| {
                    hard.model
                        .item_log_likelihood(features, a)
                        .partial_cmp(&hard.model.item_log_likelihood(features, b))
                        .unwrap()
                })
                .unwrap();
            let soft_best = (1..=2u8)
                .max_by(|&a, &b| {
                    soft.model
                        .item_log_likelihood(features, a)
                        .partial_cmp(&soft.model.item_log_likelihood(features, b))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(hard_best, soft_best);
        }
    }

    #[test]
    fn em_rejects_empty_dataset() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        let ds = Dataset::new(schema.clone(), vec![], vec![]).unwrap();
        let model = SkillModel::new(
            schema,
            1,
            vec![vec![FeatureDistribution::Poisson(
                Poisson::new(1.0).unwrap(),
            )]],
        )
        .unwrap();
        let trans = TransitionModel::uninformative(1).unwrap();
        let cfg = EmConfig::new(model, trans).with_max_iterations(5);
        assert!(train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).is_err());
    }

    #[test]
    fn parallel_emission_table_is_equivalent() {
        let ds = progression_dataset();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let cfg = EmConfig::new(initial, trans)
            .with_max_iterations(10)
            .with_tolerance(1e-9);
        let seq = train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let par = train_em_with_parallelism(&ds, &cfg, &ParallelConfig::all(3)).unwrap();
        assert_eq!(seq.evidence_trace, par.evidence_trace);
    }

    #[test]
    fn incremental_em_matches_full_em() {
        let ds = progression_dataset();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let cfg = EmConfig::new(initial, trans)
            .with_max_iterations(25)
            .with_tolerance(1e-9);
        let incremental =
            train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let full = train_em_with_parallelism(
            &ds,
            &cfg,
            &ParallelConfig::sequential().with_incremental(false),
        )
        .unwrap();
        assert_eq!(incremental.converged, full.converged);
        assert_eq!(
            incremental.evidence_trace.len(),
            full.evidence_trace.len(),
            "incremental {:?} vs full {:?}",
            incremental.evidence_trace,
            full.evidence_trace
        );
        for (a, b) in incremental.evidence_trace.iter().zip(&full.evidence_trace) {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "evidence diverged: {a} vs {b}"
            );
        }
        // The fitted models score every item near-identically.
        for (item, features) in ds.items().iter().enumerate() {
            for s in 1..=2u8 {
                let a = incremental.model.item_log_likelihood(features, s);
                let b = full.model.item_log_likelihood(features, s);
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "item {item} level {s}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn incremental_em_with_zero_gate_matches_tightly() {
        let ds = progression_dataset();
        let initial = initialize_model(&ds, 2, 5, 0.01).unwrap();
        let trans = TransitionModel::uninformative(2).unwrap();
        let cfg = EmConfig::new(initial, trans)
            .with_max_iterations(15)
            .with_tolerance(1e-9)
            .with_gamma_tolerance(0.0);
        let incremental =
            train_em_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let full = train_em_with_parallelism(
            &ds,
            &cfg,
            &ParallelConfig::sequential().with_incremental(false),
        )
        .unwrap();
        // With a zero gate the weights equal the full sums up to
        // summation order; traces stay within tight relative tolerance.
        for (a, b) in incremental.evidence_trace.iter().zip(&full.evidence_trace) {
            assert!(
                (a - b).abs() <= 1e-11 * b.abs().max(1.0),
                "evidence diverged: {a} vs {b}"
            );
        }
    }
}
