//! The skill model: an `S × F` grid of per-skill, per-feature distributions.
//!
//! Implements the generative process of Eq. 2:
//! `P(i | s) = Π_f P_f(i_f | θ_f(s))`, the joint likelihood an item's
//! features are generated at skill level `s`.

use serde::{Deserialize, Serialize};

use crate::dist::FeatureDistribution;
use crate::error::{CoreError, Result};
use crate::feature::{FeatureSchema, FeatureValue};
use crate::types::SkillLevel;

/// A trained (or initialized) skill model.
///
/// `cells[s-1][f]` holds the distribution `P_f(· | θ_f(s))` for skill level
/// `s` and feature `f`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkillModel {
    schema: FeatureSchema,
    n_levels: usize,
    cells: Vec<Vec<FeatureDistribution>>,
}

impl SkillModel {
    /// Assembles a model from a parameter grid.
    ///
    /// `cells` must have exactly `n_levels` rows of `schema.len()` columns.
    pub fn new(
        schema: FeatureSchema,
        n_levels: usize,
        cells: Vec<Vec<FeatureDistribution>>,
    ) -> Result<Self> {
        if n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        if cells.len() != n_levels {
            return Err(CoreError::LengthMismatch {
                context: "model rows vs skill levels",
                left: cells.len(),
                right: n_levels,
            });
        }
        for row in &cells {
            if row.len() != schema.len() {
                return Err(CoreError::LengthMismatch {
                    context: "model row vs schema features",
                    left: row.len(),
                    right: schema.len(),
                });
            }
        }
        Ok(Self {
            schema,
            n_levels,
            cells,
        })
    }

    /// The feature schema this model was trained on.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Number of skill levels `S`.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Number of features `F`.
    pub fn n_features(&self) -> usize {
        self.schema.len()
    }

    /// All skill levels `1..=S` this model covers.
    pub fn levels(&self) -> impl Iterator<Item = SkillLevel> {
        (1..=self.n_levels as u8).map(|s| s as SkillLevel)
    }

    /// The distribution for feature `f` at skill level `s` (1-based).
    pub fn cell(&self, s: SkillLevel, f: usize) -> Result<&FeatureDistribution> {
        let row = self
            .cells
            .get(s as usize - 1)
            .ok_or(CoreError::InvalidSkillCount {
                requested: s as usize,
            })?;
        row.get(f).ok_or(CoreError::FeatureIndexOutOfBounds {
            index: f,
            len: row.len(),
        })
    }

    /// Log-likelihood `log P(i | s) = Σ_f log P_f(i_f | θ_f(s))` (Eq. 2).
    ///
    /// Returns `-inf` for feature tuples the level's distributions cannot
    /// generate. The tuple is assumed to be schema-validated (datasets
    /// enforce this at construction); out-of-kind values score `-inf`
    /// rather than erroring, which the DP interprets as a forbidden path.
    pub fn item_log_likelihood(&self, features: &[FeatureValue], s: SkillLevel) -> f64 {
        let Some(row) = self.cells.get(s as usize - 1) else {
            return f64::NEG_INFINITY;
        };
        debug_assert_eq!(features.len(), row.len());
        row.iter()
            .zip(features)
            .map(|(dist, value)| dist.log_likelihood(value))
            .sum()
    }

    /// Log-likelihoods of one item at every skill level (`result[s-1]`).
    pub fn item_log_likelihoods(&self, features: &[FeatureValue]) -> Vec<f64> {
        (1..=self.n_levels)
            .map(|s| self.item_log_likelihood(features, s as SkillLevel))
            .collect()
    }

    /// Posterior `P(s | i)` over skill levels for an item (Eq. 10), under a
    /// given prior `P(s)` (`prior[s-1]`, must sum to ~1).
    ///
    /// Computed in log space with the max trick for stability.
    pub fn skill_posterior(&self, features: &[FeatureValue], prior: &[f64]) -> Result<Vec<f64>> {
        if prior.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "skill prior vs levels",
                left: prior.len(),
                right: self.n_levels,
            });
        }
        let mut log_post: Vec<f64> = self
            .item_log_likelihoods(features)
            .into_iter()
            .zip(prior)
            .map(|(ll, &p)| {
                if p > 0.0 {
                    ll + p.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // The item is impossible under every level; fall back to the
            // prior itself so downstream code still gets a distribution.
            let total: f64 = prior.iter().sum();
            if total <= 0.0 {
                return Err(CoreError::InvalidProbability {
                    context: "skill prior sum",
                    value: total,
                });
            }
            return Ok(prior.iter().map(|&p| p / total).collect());
        }
        let mut total = 0.0;
        for lp in log_post.iter_mut() {
            *lp = (*lp - max).exp();
            total += *lp;
        }
        for lp in log_post.iter_mut() {
            *lp /= total;
        }
        Ok(log_post)
    }

    /// Convenience: the distribution row for a level (all features).
    pub fn level_row(&self, s: SkillLevel) -> Result<&[FeatureDistribution]> {
        self.cells
            .get(s as usize - 1)
            .map(Vec::as_slice)
            .ok_or(CoreError::InvalidSkillCount {
                requested: s as usize,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, Poisson};
    use crate::feature::FeatureKind;

    fn two_level_model() -> SkillModel {
        // Level 1 prefers category 0; level 2 prefers category 1.
        // Count feature: level 1 has rate 2, level 2 has rate 6.
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 2 },
            FeatureKind::Count,
        ])
        .unwrap();
        let cells = vec![
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.9, 0.1]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
            ],
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.1, 0.9]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(6.0).unwrap()),
            ],
        ];
        SkillModel::new(schema, 2, cells).unwrap()
    }

    #[test]
    fn construction_validates_grid_shape() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        assert!(SkillModel::new(schema.clone(), 0, vec![]).is_err());
        assert!(SkillModel::new(schema.clone(), 2, vec![vec![]]).is_err());
        let bad_row = vec![vec![], vec![]];
        assert!(SkillModel::new(schema, 2, bad_row).is_err());
    }

    #[test]
    fn item_log_likelihood_factorizes() {
        let m = two_level_model();
        let item = vec![FeatureValue::Categorical(0), FeatureValue::Count(2)];
        let want = 0.9f64.ln() + Poisson::new(2.0).unwrap().log_pmf(2);
        assert!((m.item_log_likelihood(&item, 1) - want).abs() < 1e-12);
    }

    #[test]
    fn easy_item_prefers_low_level() {
        let m = two_level_model();
        let easy = vec![FeatureValue::Categorical(0), FeatureValue::Count(2)];
        let hard = vec![FeatureValue::Categorical(1), FeatureValue::Count(7)];
        assert!(m.item_log_likelihood(&easy, 1) > m.item_log_likelihood(&easy, 2));
        assert!(m.item_log_likelihood(&hard, 2) > m.item_log_likelihood(&hard, 1));
    }

    #[test]
    fn posterior_normalizes_and_orders() {
        let m = two_level_model();
        let hard = vec![FeatureValue::Categorical(1), FeatureValue::Count(7)];
        let post = m.skill_posterior(&hard, &[0.5, 0.5]).unwrap();
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(post[1] > post[0]);
    }

    #[test]
    fn posterior_respects_prior() {
        let m = two_level_model();
        let ambiguous = vec![FeatureValue::Categorical(0), FeatureValue::Count(4)];
        let flat = m.skill_posterior(&ambiguous, &[0.5, 0.5]).unwrap();
        let skewed = m.skill_posterior(&ambiguous, &[0.99, 0.01]).unwrap();
        assert!(skewed[0] > flat[0]);
    }

    #[test]
    fn posterior_rejects_bad_prior_length() {
        let m = two_level_model();
        let item = vec![FeatureValue::Categorical(0), FeatureValue::Count(1)];
        assert!(m.skill_posterior(&item, &[1.0]).is_err());
    }

    #[test]
    fn posterior_falls_back_to_prior_for_impossible_items() {
        // Unsmoothed categorical: category 1 impossible at both levels.
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let cells = vec![
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![1.0, 0.0]).unwrap(),
            )],
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![1.0, 0.0]).unwrap(),
            )],
        ];
        let m = SkillModel::new(schema, 2, cells).unwrap();
        let post = m
            .skill_posterior(&[FeatureValue::Categorical(1)], &[0.3, 0.7])
            .unwrap();
        assert!((post[0] - 0.3).abs() < 1e-12);
        assert!((post[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let m = two_level_model();
        let json = serde_json::to_string(&m).unwrap();
        let back: SkillModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn cell_accessors_bounds_checked() {
        let m = two_level_model();
        assert!(m.cell(1, 0).is_ok());
        assert!(m.cell(3, 0).is_err());
        assert!(m.cell(1, 5).is_err());
        assert!(m.level_row(2).is_ok());
        assert!(m.level_row(9).is_err());
    }
}
