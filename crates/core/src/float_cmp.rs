//! Approved exact float comparisons.
//!
//! Raw `==`/`!=` between floats is forbidden by the workspace lint
//! (`xtask lint`, rule `float-eq`) because most call sites actually want a
//! tolerance and bit-exact comparison is a silent bug when they do. The
//! few comparisons that *are* intentionally exact — sentinel checks
//! against `-inf`, zero-count guards, integrality tests — go through the
//! named helpers in this module so the intent is visible and the lint can
//! allowlist one file instead of dozens of sites.
//!
//! Every helper is `#[inline]` and compiles to the same instruction the
//! raw comparison would; there is no cost to routing through them.

/// Exactly `-inf` — the sentinel for a forbidden DP path or an
/// impossible emission. NaN is *not* `-inf` (the comparison is `false`),
/// matching IEEE semantics the DP relies on.
#[inline]
pub fn is_neg_infinity(x: f64) -> bool {
    x == f64::NEG_INFINITY
}

/// Exactly `+inf`. NaN returns `false`.
#[inline]
pub fn is_pos_infinity(x: f64) -> bool {
    x == f64::INFINITY
}

/// Exactly zero (positive or negative zero). Used for count/weight
/// guards where the value is an exact sum of integers or was never
/// touched; a tolerance would mask accumulator corruption.
#[inline]
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Whether `x` has no fractional part (e.g. `3.0`, `-2.0`). NaN and
/// infinities return `false`.
#[inline]
pub fn is_integral(x: f64) -> bool {
    x.is_finite() && x.fract() == 0.0
}

/// Absolute-tolerance approximate equality. The caller owns the
/// tolerance; there is deliberately no default.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_sentinels() {
        assert!(is_neg_infinity(f64::NEG_INFINITY));
        assert!(!is_neg_infinity(f64::INFINITY));
        assert!(!is_neg_infinity(f64::NAN));
        assert!(!is_neg_infinity(-1e308));
        assert!(is_pos_infinity(f64::INFINITY));
        assert!(!is_pos_infinity(f64::NAN));
    }

    #[test]
    fn zero_and_integrality() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(f64::MIN_POSITIVE));
        assert!(is_integral(3.0));
        assert!(is_integral(-2.0));
        assert!(!is_integral(2.5));
        assert!(!is_integral(f64::NAN));
        assert!(!is_integral(f64::INFINITY));
    }

    #[test]
    fn approx_eq_uses_caller_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }
}
