//! Adaptive upskilling policies over precomputed difficulty bands —
//! the product loop the paper motivates (Fig. 1) but stops short of.
//!
//! The static recommender ([`crate::recommend`]) scores a level band
//! once and serves the same ranking to every user at that level. This
//! module adds the *adaptive* layer on top (after the AdUp adaptive
//! upskilling loop): per-user [`PolicyState`] accumulates recent
//! correctness evidence and failure history, and [`rerank_band`]
//! re-scores the band's prebuilt ranking against three objectives —
//!
//! - **aptitude** — expected learning gain: the item's stretch
//!   `d − s_eff` above the user's effective level, weighted by the
//!   user's success rate at that difficulty band (teaching pressure —
//!   reach upward, but only where reaching still succeeds);
//! - **expected performance** — the user's Laplace-smoothed success
//!   rate at the item's difficulty band, discounted by stretch
//!   (motivation pressure);
//! - **gap** — closeness to recently *failed* difficulties (review
//!   pressure: revisit what just went wrong).
//!
//! A [`PolicyMode`] fixes the objective weights (teach / motivate /
//! hybrid) and a practice/review/challenge [`MixQuota`] reserves
//! slots of the result list per stratum, so a teaching mode still
//! surfaces warm-up items and a motivating mode still stretches.
//!
//! The **NCC window** (non-consecutive-correct, after AdUp's skill
//! update) nudges the *effective* level used for scoring: a full
//! window of successes at the user's committed band lifts `s_eff`
//! above the (lagging) committed estimate; a fresh failure pulls it
//! back. Failures at a difficulty reset the streaks at every band at
//! or above it.
//!
//! Everything here is deterministic: re-ranking is a pure function of
//! `(band, state, config)`, ties break by item id, and no randomness
//! or clock is consulted — the property the serving layer's bitwise
//! replay tests rely on.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::recommend::LevelBand;
use crate::types::{ItemId, SkillLevel};

/// Which objective mix drives the adaptive re-ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyMode {
    /// Teaching: aptitude-heavy — prioritize stretch items that pull
    /// the user upward, with a challenge-heavy mix.
    Teach,
    /// Motivating: expected-performance-heavy — prioritize items the
    /// user is likely to complete, with a practice-heavy mix.
    Motivate,
    /// Balanced blend of teaching and motivating pressure.
    Hybrid,
}

impl PolicyMode {
    /// Stable lowercase name (report keys, CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyMode::Teach => "teach",
            PolicyMode::Motivate => "motivate",
            PolicyMode::Hybrid => "hybrid",
        }
    }
}

/// Fractions of the result list reserved per difficulty stratum
/// relative to the user's effective level. Unreserved slots go to the
/// best-scoring survivors regardless of stratum, and a stratum that
/// cannot fill its reservation releases the slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixQuota {
    /// Fraction reserved for at-level items (within
    /// [`PolicyConfig::practice_halfwidth`] of the effective level).
    pub practice: f64,
    /// Fraction reserved for below-level items.
    pub review: f64,
    /// Fraction reserved for above-level items.
    pub challenge: f64,
}

impl MixQuota {
    fn validate(&self) -> Result<()> {
        for (what, v) in [
            ("practice quota", self.practice),
            ("review quota", self.review),
            ("challenge quota", self.challenge),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::InvalidProbability {
                    context: what,
                    value: v,
                });
            }
        }
        let total = self.practice + self.review + self.challenge;
        if total > 1.0 + 1e-12 {
            return Err(CoreError::InvalidProbability {
                context: "mix quota total",
                value: total,
            });
        }
        Ok(())
    }
}

/// Tuning for the adaptive policy layer. Build via [`PolicyConfig::teach`],
/// [`PolicyConfig::motivate`], or [`PolicyConfig::hybrid`], then adjust
/// fields as needed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// The mode this configuration implements (recorded so the serving
    /// envelope can reject mismatched requests).
    pub mode: PolicyMode,
    /// Weight of the aptitude (stretch) objective.
    pub w_aptitude: f64,
    /// Weight of the expected-performance objective.
    pub w_expected: f64,
    /// Weight of the recent-failure-gap objective.
    pub w_gap: f64,
    /// Blend weight of the band's own static score (0 = pure policy,
    /// 1 = static ranking unchanged).
    pub static_weight: f64,
    /// Length of the per-band non-consecutive-correct window.
    pub ncc_window: usize,
    /// Effective-level lift when the committed band's window is full
    /// of successes.
    pub nudge_up: f64,
    /// Effective-level drop when the committed band's latest recorded
    /// outcome is a failure.
    pub nudge_down: f64,
    /// Half-width of the practice stratum around the effective level.
    pub practice_halfwidth: f64,
    /// How many recent failed difficulties the gap objective remembers.
    pub failure_memory: usize,
    /// Practice/review/challenge slot reservations.
    pub mix: MixQuota,
}

impl PolicyConfig {
    fn base(mode: PolicyMode) -> Self {
        Self {
            mode,
            w_aptitude: 0.4,
            w_expected: 0.35,
            w_gap: 0.25,
            static_weight: 0.25,
            ncc_window: 3,
            nudge_up: 0.5,
            nudge_down: 0.25,
            practice_halfwidth: 0.25,
            failure_memory: 5,
            mix: MixQuota {
                practice: 0.3,
                review: 0.2,
                challenge: 0.3,
            },
        }
    }

    /// Aptitude-heavy teaching preset.
    pub fn teach() -> Self {
        Self {
            w_aptitude: 0.6,
            w_expected: 0.2,
            w_gap: 0.2,
            mix: MixQuota {
                practice: 0.2,
                review: 0.1,
                challenge: 0.5,
            },
            ..Self::base(PolicyMode::Teach)
        }
    }

    /// Expected-performance-heavy motivating preset.
    pub fn motivate() -> Self {
        Self {
            w_aptitude: 0.15,
            w_expected: 0.6,
            w_gap: 0.25,
            mix: MixQuota {
                practice: 0.5,
                review: 0.3,
                challenge: 0.1,
            },
            ..Self::base(PolicyMode::Motivate)
        }
    }

    /// Balanced hybrid preset.
    pub fn hybrid() -> Self {
        Self::base(PolicyMode::Hybrid)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        for (what, v) in [
            ("aptitude weight", self.w_aptitude),
            ("expected-performance weight", self.w_expected),
            ("gap weight", self.w_gap),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidProbability {
                    context: what,
                    value: v,
                });
            }
        }
        if self.w_aptitude + self.w_expected + self.w_gap <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "objective weight total",
                value: 0.0,
            });
        }
        if !(0.0..=1.0).contains(&self.static_weight) {
            return Err(CoreError::InvalidProbability {
                context: "static blend weight",
                value: self.static_weight,
            });
        }
        if self.ncc_window == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        if !self.nudge_up.is_finite()
            || self.nudge_up < 0.0
            || !self.nudge_down.is_finite()
            || self.nudge_down < 0.0
        {
            return Err(CoreError::InvalidProbability {
                context: "effective-level nudge",
                value: self.nudge_up.min(self.nudge_down),
            });
        }
        if !self.practice_halfwidth.is_finite() || self.practice_halfwidth < 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "practice half-width",
                value: self.practice_halfwidth,
            });
        }
        self.mix.validate()
    }
}

/// Per-user adaptive state: non-consecutive-correct windows per
/// difficulty band, recently failed difficulties, and the set of items
/// with an unresolved failure (retry candidates).
///
/// The state is deliberately tiny — `O(S · window)` booleans plus
/// bounded failure history — so the serving layer can shard it
/// alongside the existing per-user session state and clone it out from
/// under a shard lock in O(1)-ish time.
#[derive(Debug, Clone)]
pub struct PolicyState {
    n_levels: usize,
    window: usize,
    failure_memory: usize,
    /// Per difficulty band (index `b` = difficulty rounding to `b+1`):
    /// most recent outcomes, oldest first, at most `window` entries.
    ncc: Vec<Vec<bool>>,
    /// Recently failed difficulties, oldest first, bounded by
    /// `failure_memory`.
    recent_failures: Vec<f64>,
    /// Items whose most recent recorded outcome was a failure.
    failed_items: HashSet<ItemId>,
    /// Attempts per band (successes + failures).
    attempts: Vec<u64>,
    /// Successes per band.
    successes: Vec<u64>,
}

impl PolicyState {
    /// Fresh state for a user under `config`, over `n_levels` bands.
    pub fn new(n_levels: usize, config: &PolicyConfig) -> Result<Self> {
        if n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        config.validate()?;
        Ok(Self {
            n_levels,
            window: config.ncc_window,
            failure_memory: config.failure_memory,
            ncc: vec![Vec::new(); n_levels],
            recent_failures: Vec::new(),
            failed_items: HashSet::new(),
            attempts: vec![0; n_levels],
            successes: vec![0; n_levels],
        })
    }

    /// Which band a difficulty falls into (0-based; clamped).
    fn band_index(&self, difficulty: f64) -> usize {
        let b = difficulty.round();
        if b < 1.0 {
            0
        } else if b >= self.n_levels as f64 {
            self.n_levels - 1
        } else {
            b as usize - 1
        }
    }

    /// Records one observed outcome at `difficulty`. Successes extend
    /// the band's streak and clear the item's failed mark; failures
    /// reset the streaks of every band at or above the failed one
    /// (the AdUp reset rule) and enter the failure history.
    pub fn record(&mut self, item: ItemId, difficulty: f64, correct: bool) {
        let b = self.band_index(difficulty);
        self.attempts[b] += 1;
        if correct {
            self.successes[b] += 1;
            self.failed_items.remove(&item);
            let w = &mut self.ncc[b];
            if w.len() == self.window {
                w.remove(0);
            }
            w.push(true);
        } else {
            self.failed_items.insert(item);
            for w in self.ncc[b..].iter_mut() {
                w.clear();
            }
            self.ncc[b].push(false);
            if self.recent_failures.len() == self.failure_memory {
                self.recent_failures.remove(0);
            }
            if self.failure_memory > 0 {
                self.recent_failures.push(difficulty);
            }
        }
    }

    /// The effective level the policy scores against: the committed
    /// estimate nudged by the NCC evidence at its band, clamped to
    /// `[1, S]`.
    pub fn effective_level(&self, committed: SkillLevel, config: &PolicyConfig) -> f64 {
        let s = committed as f64;
        let b = self.band_index(s);
        let w = &self.ncc[b];
        let nudged = if w.len() >= self.window && w.iter().all(|&c| c) {
            s + config.nudge_up
        } else if matches!(w.last(), Some(false)) {
            s - config.nudge_down
        } else {
            s
        };
        nudged.clamp(1.0, self.n_levels as f64)
    }

    /// Whether `item`'s most recent recorded outcome was a failure
    /// (serving layers keep such items recommendable for retry).
    pub fn has_failed(&self, item: ItemId) -> bool {
        self.failed_items.contains(&item)
    }

    /// Laplace-smoothed success rate at the band `difficulty` falls in.
    pub fn success_rate(&self, difficulty: f64) -> f64 {
        let b = self.band_index(difficulty);
        (self.successes[b] + 1) as f64 / (self.attempts[b] + 2) as f64
    }

    /// Recently failed difficulties, oldest first.
    pub fn recent_failures(&self) -> &[f64] {
        &self.recent_failures
    }

    /// Total recorded attempts across all bands.
    pub fn total_attempts(&self) -> u64 {
        self.attempts.iter().sum()
    }
}

/// Which stratum of the practice/review/challenge mix an item falls in
/// relative to the user's effective level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stratum {
    /// Below the effective level by more than the practice half-width.
    Review,
    /// Within the practice half-width of the effective level.
    Practice,
    /// Above the effective level by more than the practice half-width.
    Challenge,
}

/// One adaptively re-ranked recommendation with its objective
/// decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRecommendation {
    /// The recommended item.
    pub item: ItemId,
    /// Its estimated difficulty.
    pub difficulty: f64,
    /// Stratum relative to the user's effective level.
    pub stratum: Stratum,
    /// Aptitude objective in `[0, 1]`: normalized stretch weighted by
    /// the user's success rate at the item's difficulty band.
    pub aptitude: f64,
    /// Expected-performance objective in `[0, 1]`.
    pub expected: f64,
    /// Recent-failure-gap objective in `[0, 1]`.
    pub gap: f64,
    /// Weighted objective blend in `[0, 1]`.
    pub policy_score: f64,
    /// The band's static score for the item.
    pub static_score: f64,
    /// Final blended score the ranking sorts by.
    pub score: f64,
}

/// Total order: blended score descending, then item id ascending —
/// mirrors the static recommender's tie-break so re-ranking stays
/// deterministic.
fn policy_order(a: &PolicyRecommendation, b: &PolicyRecommendation) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.item.cmp(&b.item))
}

/// Re-ranks a prebuilt [`LevelBand`] for one user: scores every
/// non-excluded candidate against the policy objectives at the user's
/// effective level, then selects `k` items honoring the
/// practice/review/challenge reservations (best-scoring first within
/// each stratum, leftover slots filled globally). The returned list is
/// sorted by blended score (ties by item id).
///
/// O(band) per query against the band's full prebuilt ranking; never
/// rescans the catalog and never touches model state, so policy reads
/// stay epoch-pinned exactly like the static path.
pub fn rerank_band(
    band: &LevelBand,
    state: &PolicyState,
    committed: SkillLevel,
    exclude: &dyn Fn(ItemId) -> bool,
    config: &PolicyConfig,
    k: usize,
) -> Result<Vec<PolicyRecommendation>> {
    config.validate()?;
    if k == 0 {
        return Err(CoreError::InvalidSkillCount { requested: 0 });
    }
    let s_eff = state.effective_level(committed, config);
    let upper = band.config().upper_slack.max(1e-9);
    let span = (band.config().lower_slack + band.config().upper_slack).max(1e-9);
    let w_total = config.w_aptitude + config.w_expected + config.w_gap;

    let mut scored: Vec<PolicyRecommendation> = Vec::new();
    for r in band.ranked() {
        if exclude(r.item) {
            continue;
        }
        let stretch = r.difficulty - s_eff;
        let reach = if stretch > 0.0 {
            (stretch / upper).min(1.0)
        } else {
            0.0
        };
        let rate = state.success_rate(r.difficulty);
        // Success-rate weighting is what makes the ranking *adaptive*:
        // an unweighted reach term would score the top of the band
        // identically whether the user lands those items or drowns in
        // them, so failures could never demote an overreaching pick.
        let aptitude = rate * reach;
        let expected = rate * (1.0 - reach);
        let gap = if state.recent_failures.is_empty() {
            0.0
        } else {
            let nearest = state
                .recent_failures
                .iter()
                .map(|f| (r.difficulty - f).abs())
                .fold(f64::INFINITY, f64::min);
            (1.0 - nearest / span).clamp(0.0, 1.0)
        };
        let policy_score =
            (config.w_aptitude * aptitude + config.w_expected * expected + config.w_gap * gap)
                / w_total;
        let stratum = if stretch > config.practice_halfwidth {
            Stratum::Challenge
        } else if stretch < -config.practice_halfwidth {
            Stratum::Review
        } else {
            Stratum::Practice
        };
        scored.push(PolicyRecommendation {
            item: r.item,
            difficulty: r.difficulty,
            stratum,
            aptitude,
            expected,
            gap,
            policy_score,
            static_score: r.score,
            score: (1.0 - config.static_weight) * policy_score + config.static_weight * r.score,
        });
    }
    scored.sort_by(policy_order);

    // Reserved slots per stratum; the remainder is unreserved.
    let k = k.min(scored.len());
    let reserve = |frac: f64| ((k as f64) * frac).floor() as usize;
    let mut quota = [
        reserve(config.mix.review),
        reserve(config.mix.practice),
        reserve(config.mix.challenge),
    ];
    let stratum_slot = |s: Stratum| match s {
        Stratum::Review => 0usize,
        Stratum::Practice => 1,
        Stratum::Challenge => 2,
    };
    let mut picked = vec![false; scored.len()];
    let mut n_picked = 0usize;
    // Pass 1: fill each stratum's reservation best-first.
    for (i, rec) in scored.iter().enumerate() {
        if n_picked == k {
            break;
        }
        let slot = stratum_slot(rec.stratum);
        if quota[slot] > 0 {
            quota[slot] -= 1;
            picked[i] = true;
            n_picked += 1;
        }
    }
    // Pass 2: release unfilled reservations to the global ranking.
    for (i, _) in scored.iter().enumerate() {
        if n_picked == k {
            break;
        }
        if !picked[i] {
            picked[i] = true;
            n_picked += 1;
        }
    }
    // `scored` is already in output order; keep the picks' order.
    Ok(scored
        .into_iter()
        .zip(picked)
        .filter_map(|(r, p)| p.then_some(r))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::emission::EmissionTable;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::model::SkillModel;
    use crate::recommend::{build_level_band, RecommendConfig};
    use crate::types::{Action, ActionSequence, Dataset};

    /// Nine items spread over difficulties ~1..3, 3-level model.
    fn band_fixture(level: SkillLevel) -> LevelBand {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 9 }]).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..9u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let seq =
            ActionSequence::new(0, (0..9).map(|t| Action::new(t, 0, t as u32)).collect()).unwrap();
        let ds = Dataset::new(schema.clone(), items, vec![seq]).unwrap();
        let cells = (0..3)
            .map(|s| {
                let mut probs = vec![0.02; 9];
                for (c, p) in probs.iter_mut().enumerate() {
                    if c / 3 == s {
                        *p = 0.88 / 3.0;
                    }
                }
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(probs).unwrap(),
                )]
            })
            .collect();
        let model = SkillModel::new(schema, 3, cells).unwrap();
        let table = EmissionTable::build(&model, &ds);
        let difficulty: Vec<f64> = (0..9)
            .map(|i| 1.0 + (i / 3) as f64 + 0.1 * (i % 3) as f64)
            .collect();
        let config = RecommendConfig {
            lower_slack: 2.5,
            upper_slack: 2.5,
            interest_weight: 0.3,
            ..RecommendConfig::default()
        };
        build_level_band(&table, &difficulty, level, &config).unwrap()
    }

    #[test]
    fn presets_validate_and_carry_their_mode() {
        for (cfg, mode) in [
            (PolicyConfig::teach(), PolicyMode::Teach),
            (PolicyConfig::motivate(), PolicyMode::Motivate),
            (PolicyConfig::hybrid(), PolicyMode::Hybrid),
        ] {
            cfg.validate().unwrap();
            assert_eq!(cfg.mode, mode);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = PolicyConfig::hybrid();
        c.w_aptitude = -0.1;
        assert!(c.validate().is_err());
        let mut c = PolicyConfig::hybrid();
        c.w_aptitude = 0.0;
        c.w_expected = 0.0;
        c.w_gap = 0.0;
        assert!(c.validate().is_err());
        let mut c = PolicyConfig::hybrid();
        c.ncc_window = 0;
        assert!(c.validate().is_err());
        let mut c = PolicyConfig::hybrid();
        c.static_weight = 1.5;
        assert!(c.validate().is_err());
        let mut c = PolicyConfig::hybrid();
        c.mix.challenge = 0.9;
        c.mix.practice = 0.9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ncc_window_nudges_effective_level() {
        let cfg = PolicyConfig::hybrid();
        let mut state = PolicyState::new(3, &cfg).unwrap();
        assert!((state.effective_level(2, &cfg) - 2.0).abs() < 1e-12);
        // A full window of successes at band 2 lifts the level.
        for item in 0..cfg.ncc_window as u32 {
            state.record(item, 2.0, true);
        }
        assert!((state.effective_level(2, &cfg) - 2.5).abs() < 1e-12);
        // A failure at band 2 resets the streak and pulls it down.
        state.record(99, 2.0, false);
        assert!((state.effective_level(2, &cfg) - 1.75).abs() < 1e-12);
        assert!(state.has_failed(99));
        // Retrying the item successfully clears the failed mark.
        state.record(99, 2.0, true);
        assert!(!state.has_failed(99));
        // Bounds clamp.
        assert!(state.effective_level(3, &cfg) <= 3.0);
        assert!(state.effective_level(1, &cfg) >= 1.0);
    }

    #[test]
    fn failure_resets_bands_at_and_above() {
        let cfg = PolicyConfig::hybrid();
        let mut state = PolicyState::new(3, &cfg).unwrap();
        for item in 0..3u32 {
            state.record(item, 1.0, true);
            state.record(item + 10, 3.0, true);
        }
        assert!((state.effective_level(1, &cfg) - 1.5).abs() < 1e-12);
        assert!((state.effective_level(3, &cfg) - 3.0).abs() < 1e-12); // clamped
                                                                       // A failure at band 2 wipes bands 2 and 3, but not band 1.
        state.record(50, 2.0, false);
        assert!((state.effective_level(1, &cfg) - 1.5).abs() < 1e-12);
        assert!((state.effective_level(3, &cfg) - 3.0).abs() < 1e-12);
        // Band 3's streak is gone: one more success doesn't refill it.
        state.record(60, 3.0, true);
        let lvl = state.effective_level(3, &cfg);
        assert!((lvl - 3.0).abs() < 1e-12, "window must have been reset");
        assert_eq!(state.total_attempts(), 8);
    }

    #[test]
    fn rerank_is_deterministic_and_bounded() {
        let band = band_fixture(2);
        let cfg = PolicyConfig::hybrid();
        let mut state = PolicyState::new(3, &cfg).unwrap();
        state.record(1, 2.0, true);
        state.record(2, 2.9, false);
        let a = rerank_band(&band, &state, 2, &|_| false, &cfg, 5).unwrap();
        let b = rerank_band(&band, &state, 2, &|_| false, &cfg, 5).unwrap();
        assert_eq!(a, b);
        assert!(a.len() <= 5);
        assert!(!a.is_empty());
        for r in &a {
            assert!((0.0..=1.0 + 1e-12).contains(&r.policy_score));
            assert!((0.0..=1.0 + 1e-12).contains(&r.aptitude));
            assert!((0.0..=1.0 + 1e-12).contains(&r.expected));
            assert!((0.0..=1.0 + 1e-12).contains(&r.gap));
        }
        assert!(a.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn quotas_reserve_strata_when_available() {
        let band = band_fixture(2);
        let mut cfg = PolicyConfig::hybrid();
        cfg.mix = MixQuota {
            practice: 0.25,
            review: 0.25,
            challenge: 0.25,
        };
        let state = PolicyState::new(3, &PolicyConfig::hybrid()).unwrap();
        let recs = rerank_band(&band, &state, 2, &|_| false, &cfg, 8).unwrap();
        // The wide fixture band has items in every stratum, so each
        // reserved stratum must be represented.
        for stratum in [Stratum::Review, Stratum::Practice, Stratum::Challenge] {
            assert!(
                recs.iter().any(|r| r.stratum == stratum),
                "missing {stratum:?} in {recs:?}"
            );
        }
    }

    #[test]
    fn teach_mode_stretches_more_than_motivate() {
        let band = band_fixture(2);
        let state_t = PolicyState::new(3, &PolicyConfig::teach()).unwrap();
        let state_m = PolicyState::new(3, &PolicyConfig::motivate()).unwrap();
        let teach = rerank_band(&band, &state_t, 2, &|_| false, &PolicyConfig::teach(), 4).unwrap();
        let motivate =
            rerank_band(&band, &state_m, 2, &|_| false, &PolicyConfig::motivate(), 4).unwrap();
        let mean_d = |recs: &[PolicyRecommendation]| {
            recs.iter().map(|r| r.difficulty).sum::<f64>() / recs.len().max(1) as f64
        };
        assert!(
            mean_d(&teach) > mean_d(&motivate),
            "teach {:.3} vs motivate {:.3}",
            mean_d(&teach),
            mean_d(&motivate)
        );
    }

    #[test]
    fn exclusion_and_k_are_honored() {
        let band = band_fixture(2);
        let cfg = PolicyConfig::hybrid();
        let state = PolicyState::new(3, &cfg).unwrap();
        let recs = rerank_band(&band, &state, 2, &|i| i % 2 == 0, &cfg, 3).unwrap();
        assert!(recs.iter().all(|r| r.item % 2 == 1));
        assert!(recs.len() <= 3);
        assert!(rerank_band(&band, &state, 2, &|_| false, &cfg, 0).is_err());
    }

    #[test]
    fn repeated_failures_demote_an_overreaching_pick() {
        let band = band_fixture(2);
        let mut cfg = PolicyConfig::hybrid();
        cfg.w_aptitude = 0.6;
        cfg.w_expected = 0.3;
        cfg.w_gap = 0.0;
        cfg.static_weight = 0.0;
        let mut state = PolicyState::new(3, &cfg).unwrap();
        let fresh = rerank_band(&band, &state, 2, &|_| false, &cfg, 1).unwrap();
        // With no evidence, the aptitude weight reaches for the top of
        // the band.
        assert!(fresh[0].difficulty > 2.5, "{fresh:?}");
        // Drowning at that difficulty must pull the pick back down:
        // the success-rate weighting demotes the failed band.
        for _ in 0..6 {
            state.record(fresh[0].item, fresh[0].difficulty, false);
        }
        let after = rerank_band(&band, &state, 2, &|_| false, &cfg, 1).unwrap();
        assert!(
            after[0].difficulty < fresh[0].difficulty,
            "fresh {fresh:?} vs after {after:?}"
        );
    }

    #[test]
    fn gap_objective_prefers_recently_failed_difficulty() {
        let band = band_fixture(2);
        let mut cfg = PolicyConfig::hybrid();
        cfg.w_aptitude = 0.0;
        cfg.w_expected = 0.0;
        cfg.w_gap = 1.0;
        cfg.static_weight = 0.0;
        cfg.mix = MixQuota {
            practice: 0.0,
            review: 0.0,
            challenge: 0.0,
        };
        let mut state = PolicyState::new(3, &cfg).unwrap();
        state.record(7, 3.0, false);
        let recs = rerank_band(&band, &state, 2, &|_| false, &cfg, 3).unwrap();
        // Highest gap = closest to the failed difficulty 3.0.
        assert!((recs[0].difficulty - 3.0).abs() < 1e-9, "{recs:?}");
        assert!(recs[0].gap >= recs.last().unwrap().gap);
        assert!(recs
            .iter()
            .all(|r| (r.difficulty - 3.0).abs() <= (1.0_f64 - 3.0).abs()));
    }
}
