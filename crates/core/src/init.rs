//! Model initialization (paper §IV-B, "Initializing model parameters").
//!
//! The objective is non-convex, so the starting point matters. Following
//! Yang et al. and Shin et al., we assume users with long sequences are the
//! most likely to have traversed all skill levels: we select users with at
//! least `min_actions` actions, split each of their sequences into `S`
//! contiguous groups that are uniform *in time*, label the `s`-th group
//! with skill `s`, and fit the initial parameters from those labels.

use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{ActionSequence, Dataset, SkillAssignments, SkillLevel, Timestamp};
use crate::update::fit_model;

/// Uniform-in-time segmentation of one sequence into `n_levels` groups.
///
/// Each action gets the level of the time bucket it falls into; buckets
/// divide `[t_first, t_last]` evenly. Degenerate spans (all actions at one
/// instant) fall back to uniform-by-index segmentation.
pub fn segment_uniform(sequence: &ActionSequence, n_levels: usize) -> Vec<SkillLevel> {
    let times: Vec<Timestamp> = sequence.actions().iter().map(|a| a.time).collect();
    segment_uniform_times(&times, n_levels)
}

/// [`segment_uniform`] over a bare (sorted) timestamp column — the form
/// the chunked trainer uses, where sequences live as columnar slices
/// rather than [`ActionSequence`] values. Identical arithmetic in
/// identical order: bitwise-equal labels for the same timestamps.
pub fn segment_uniform_times(times: &[Timestamp], n_levels: usize) -> Vec<SkillLevel> {
    let n = times.len();
    if n == 0 {
        return Vec::new();
    }
    let t0 = times[0];
    let t1 = times[n - 1];
    if t1 > t0 {
        let span = (t1 - t0) as f64;
        times
            .iter()
            .map(|&t| {
                let frac = (t - t0) as f64 / span;
                let level = (frac * n_levels as f64).floor() as usize;
                (level.min(n_levels - 1) + 1) as SkillLevel
            })
            .collect()
    } else {
        // Zero time span: segment by index instead.
        (0..n)
            .map(|idx| {
                let level = idx * n_levels / n;
                (level.min(n_levels - 1) + 1) as SkillLevel
            })
            .collect()
    }
}

/// Produces the initial model by uniform segmentation of long sequences.
///
/// Only users with at least `min_actions` actions contribute to the initial
/// parameter fit (the paper's `U_{≥N}`); all users participate in the
/// subsequent training iterations.
pub fn initialize_model(
    dataset: &Dataset,
    n_levels: usize,
    min_actions: usize,
    lambda: f64,
) -> Result<SkillModel> {
    if n_levels == 0 {
        return Err(CoreError::InvalidSkillCount { requested: 0 });
    }
    if dataset.n_actions() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let long = dataset.subset_users(|s| s.len() >= min_actions)?;
    if long.n_actions() == 0 {
        return Err(CoreError::NoInitializationUsers {
            threshold: min_actions,
        });
    }
    let per_user: Vec<Vec<SkillLevel>> = long
        .sequences()
        .iter()
        .map(|s| segment_uniform(s, n_levels))
        .collect();
    let assignments = SkillAssignments { per_user };
    fit_model(&long, &assignments, n_levels, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::Action;

    fn seq_with_times(times: &[i64]) -> ActionSequence {
        ActionSequence::new(0, times.iter().map(|&t| Action::new(t, 0, 0)).collect()).unwrap()
    }

    #[test]
    fn empty_sequence_segments_empty() {
        let seq = ActionSequence::new(0, vec![]).unwrap();
        assert!(segment_uniform(&seq, 3).is_empty());
    }

    #[test]
    fn uniform_times_split_evenly() {
        let seq = seq_with_times(&[0, 1, 2, 3, 4, 5]);
        let levels = segment_uniform(&seq, 3);
        assert_eq!(levels, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn segmentation_is_time_based_not_index_based() {
        // Five actions, but four are crammed into the first time instantile.
        let seq = seq_with_times(&[0, 1, 2, 3, 100]);
        let levels = segment_uniform(&seq, 2);
        assert_eq!(levels, vec![1, 1, 1, 1, 2]);
    }

    #[test]
    fn zero_span_falls_back_to_index_segmentation() {
        let seq = seq_with_times(&[5, 5, 5, 5]);
        let levels = segment_uniform(&seq, 2);
        assert_eq!(levels, vec![1, 1, 2, 2]);
    }

    #[test]
    fn segmentation_is_monotone_and_in_range() {
        let seq = seq_with_times(&[0, 3, 3, 7, 20, 21, 22, 50]);
        for n_levels in 1..=6 {
            let levels = segment_uniform(&seq, n_levels);
            assert!(levels.windows(2).all(|w| w[0] <= w[1]));
            assert!(levels.iter().all(|&s| (1..=n_levels as u8).contains(&s)));
        }
    }

    #[test]
    fn times_slice_twin_matches_sequence_segmentation() {
        for times in [
            vec![0, 3, 3, 7, 20, 21, 22, 50],
            vec![5, 5, 5, 5],
            vec![0, 10],
            vec![],
        ] {
            let seq = ActionSequence::new(0, times.iter().map(|&t| Action::new(t, 0, 0)).collect())
                .unwrap();
            for n_levels in 1..=4 {
                assert_eq!(
                    segment_uniform(&seq, n_levels),
                    segment_uniform_times(&times, n_levels)
                );
            }
        }
    }

    #[test]
    fn last_action_gets_top_level() {
        let seq = seq_with_times(&[0, 10]);
        let levels = segment_uniform(&seq, 5);
        assert_eq!(*levels.last().unwrap(), 5);
    }

    fn small_dataset() -> Dataset {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        // User 0: long sequence (easy items first, hard later).
        let s0 = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 0),
                Action::new(2, 0, 1),
                Action::new(3, 0, 1),
            ],
        )
        .unwrap();
        // User 1: short sequence, excluded from init.
        let s1 = ActionSequence::new(1, vec![Action::new(0, 1, 1)]).unwrap();
        Dataset::new(schema, items, vec![s0, s1]).unwrap()
    }

    #[test]
    fn initialize_uses_only_long_sequences() {
        let ds = small_dataset();
        let model = initialize_model(&ds, 2, 4, 0.01).unwrap();
        // With only user 0 contributing, level 1 ← category 0, level 2 ← category 1.
        let easy = vec![FeatureValue::Categorical(0)];
        let hard = vec![FeatureValue::Categorical(1)];
        assert!(model.item_log_likelihood(&easy, 1) > model.item_log_likelihood(&easy, 2));
        assert!(model.item_log_likelihood(&hard, 2) > model.item_log_likelihood(&hard, 1));
    }

    #[test]
    fn initialize_fails_when_no_user_qualifies() {
        let ds = small_dataset();
        let err = initialize_model(&ds, 2, 100, 0.01).unwrap_err();
        assert_eq!(err, CoreError::NoInitializationUsers { threshold: 100 });
    }

    #[test]
    fn initialize_rejects_zero_levels() {
        let ds = small_dataset();
        assert!(matches!(
            initialize_model(&ds, 0, 1, 0.01),
            Err(CoreError::InvalidSkillCount { requested: 0 })
        ));
    }
}
