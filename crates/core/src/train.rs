//! Training loop (paper §IV-B): alternate skill assignment and parameter
//! update from a uniform-segmentation initialization until convergence.
//!
//! Hard assignments make each iteration a coordinate-ascent step on Eq. 3:
//! the assignment step maximizes over `Σ` with `Θ` fixed (globally, via the
//! DP), and the update step maximizes over `Θ` with `Σ` fixed (in closed
//! form per cell). With smoothing `λ > 0` the parameter step is *almost*
//! exact ascent (the smoothed MLE differs infinitesimally from the MLE), so
//! the trainer also accepts an iteration cap and an assignment-stability
//! stopping rule, which is what terminates in practice.
//!
//! Each assignment step builds one shared
//! [`EmissionTable`] (inside
//! [`assign_all_parallel`]) from the current parameters, so every iteration
//! evaluates each item's emission vector once instead of once per action;
//! see [`crate::parallel::ParallelConfig::emission`] to disable it.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::dist::DEFAULT_SMOOTHING;
use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::incremental::StatsGrid;
use crate::init::initialize_model;
use crate::invariants::InvariantCtx;
use crate::model::SkillModel;
use crate::parallel::{
    assign_all_parallel, assign_all_parallel_with_table, fit_model_parallel, ParallelConfig,
};
use crate::types::{Dataset, SkillAssignments, SkillLevel};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of skill levels `S`.
    pub n_levels: usize,
    /// Categorical smoothing pseudo-count `λ` (default 0.01).
    pub lambda: f64,
    /// Minimum sequence length for a user to join the initialization fit
    /// (`N` in the paper; 50 in the experiments).
    pub min_init_actions: usize,
    /// Maximum alternation iterations.
    pub max_iterations: usize,
    /// Stop when the relative log-likelihood improvement drops below this.
    pub tolerance: f64,
}

impl TrainConfig {
    /// Paper defaults for a given skill count: `λ = 0.01`, `N = 50`.
    pub fn new(n_levels: usize) -> Self {
        Self {
            n_levels,
            lambda: DEFAULT_SMOOTHING,
            min_init_actions: 50,
            max_iterations: 100,
            tolerance: 1e-6,
        }
    }

    /// Overrides the initialization threshold.
    pub fn with_min_init_actions(mut self, n: usize) -> Self {
        self.min_init_actions = n;
        self
    }

    /// Overrides the smoothing pseudo-count.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Overrides the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Validates hyperparameters.
    pub fn validate(&self) -> Result<()> {
        if self.n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        // `SkillLevel` is a u8: more levels than its range could silently
        // truncate level indices in the DP and grid paths.
        if self.n_levels > SkillLevel::MAX as usize {
            return Err(CoreError::InvalidSkillCount {
                requested: self.n_levels,
            });
        }
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "training lambda",
                value: self.lambda,
            });
        }
        if self.max_iterations == 0 {
            return Err(CoreError::NoConvergence {
                routine: "training",
                iterations: 0,
            });
        }
        Ok(())
    }
}

/// Log-likelihood and assignment-churn trace of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (1-based). When training stops at the iteration
    /// cap, a final entry numbered `max_iterations + 1` records the
    /// closing assignment pass (which has no update step).
    pub iteration: usize,
    /// Objective (Eq. 3) after this iteration's assignment step.
    pub log_likelihood: f64,
    /// Number of actions whose assigned level changed vs. the previous
    /// iteration; `None` on the first iteration (nothing to diff against).
    pub n_changed: Option<usize>,
    /// Wall-clock seconds this iteration took (assignment + statistics
    /// maintenance + parameter update).
    pub seconds: f64,
}

/// Output of [`train`]: the fitted model, final assignments, and the
/// per-iteration trace.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// The trained skill model.
    pub model: SkillModel,
    /// Final hard skill assignments for every action.
    pub assignments: SkillAssignments,
    /// Final objective value.
    pub log_likelihood: f64,
    /// Per-iteration statistics.
    pub trace: Vec<IterationStats>,
    /// Whether the loop stopped by convergence (vs. the iteration cap).
    pub converged: bool,
}

/// Trains a skill model on a dataset (sequential execution).
pub fn train(dataset: &Dataset, config: &TrainConfig) -> Result<TrainResult> {
    train_with_parallelism(dataset, config, &ParallelConfig::sequential())
}

/// Assignment mode of the [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainMode {
    /// Hard assignments: alternate the monotone Viterbi DP with
    /// closed-form updates (the paper's trainer; [`train_with_parallelism`]).
    #[default]
    Hard,
    /// Soft assignments: forward–backward EM over the stay/advance lattice
    /// ([`crate::em::train_em_with_parallelism`]), closed with one hard
    /// decode so the result is interchangeable with the hard mode's.
    Em,
}

/// Unified training entry point: one builder covering [`train`],
/// [`train_with_parallelism`], and the EM trainer, with parallelism and
/// hyperparameters set through `with_*` methods.
///
/// ```
/// use upskill_core::parallel::ParallelConfig;
/// use upskill_core::train::Trainer;
/// # use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
/// # use upskill_core::types::{Action, ActionSequence, Dataset};
/// # let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }])?;
/// # let items = vec![vec![FeatureValue::Categorical(0)], vec![FeatureValue::Categorical(1)]];
/// # let sequences: Vec<ActionSequence> = (0..4)
/// #     .map(|u| {
/// #         let actions = (0..8).map(|t| Action::new(t, u, u32::from(t >= 4))).collect();
/// #         ActionSequence::new(u, actions)
/// #     })
/// #     .collect::<Result<_, _>>()?;
/// # let dataset = Dataset::new(schema, items, sequences)?;
/// let result = Trainer::new(2)
///     .with_min_init_actions(4)
///     .with_parallelism(ParallelConfig::all(2))
///     .fit(&dataset)?;
/// assert!(result.assignments.is_monotone());
/// # Ok::<(), upskill_core::error::CoreError>(())
/// ```
///
/// From the returned [`TrainResult`] a live
/// [`StreamingSession`](crate::streaming::StreamingSession) can be resumed
/// — or built in one step with [`Trainer::fit_session`].
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    parallel: ParallelConfig,
    mode: TrainMode,
    /// EM-mode transitions; `None` means uninformative.
    transitions: Option<crate::transition::TransitionModel>,
}

impl Trainer {
    /// A hard-assignment, sequential trainer with paper defaults for `S`
    /// skill levels.
    pub fn new(n_levels: usize) -> Self {
        Self::from_config(TrainConfig::new(n_levels))
    }

    /// Wraps an existing [`TrainConfig`].
    pub fn from_config(config: TrainConfig) -> Self {
        Self {
            config,
            parallel: ParallelConfig::sequential(),
            mode: TrainMode::Hard,
            transitions: None,
        }
    }

    /// Overrides the smoothing pseudo-count `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.config = self.config.with_lambda(lambda);
        self
    }

    /// Overrides the initialization length threshold.
    pub fn with_min_init_actions(mut self, n: usize) -> Self {
        self.config = self.config.with_min_init_actions(n);
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.config = self.config.with_max_iterations(n);
        self
    }

    /// Overrides the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.config = self.config.with_tolerance(tolerance);
        self
    }

    /// Replaces the parallelism configuration wholesale.
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Shorthand for [`ParallelConfig::all`]: every parallel technique on
    /// `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel = ParallelConfig::all(threads);
        self
    }

    /// Switches to soft-assignment (EM) training with uninformative
    /// transitions.
    pub fn em(mut self) -> Self {
        self.mode = TrainMode::Em;
        self
    }

    /// Switches to EM training with explicit transition probabilities.
    pub fn em_with_transitions(mut self, transitions: crate::transition::TransitionModel) -> Self {
        self.mode = TrainMode::Em;
        self.transitions = Some(transitions);
        self
    }

    /// Switches (back) to hard-assignment training.
    pub fn hard(mut self) -> Self {
        self.mode = TrainMode::Hard;
        self
    }

    /// The effective training hyperparameters.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The effective parallelism configuration.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// The effective assignment mode.
    pub fn mode(&self) -> TrainMode {
        self.mode
    }

    /// Trains on `dataset` and returns a uniform [`TrainResult`] whatever
    /// the mode.
    ///
    /// In EM mode the evidence trace is exposed through
    /// [`IterationStats::log_likelihood`] (with `n_changed` and `seconds`
    /// unset/zero — EM has no churn notion and is not instrumented
    /// per-iteration), and the soft model is closed with one hard decode
    /// so `assignments` and `log_likelihood` mean the same thing in both
    /// modes.
    pub fn fit(&self, dataset: &Dataset) -> Result<TrainResult> {
        match self.mode {
            TrainMode::Hard => train_with_parallelism(dataset, &self.config, &self.parallel),
            TrainMode::Em => {
                self.config.validate()?;
                let initial = initialize_model(
                    dataset,
                    self.config.n_levels,
                    self.config.min_init_actions,
                    self.config.lambda,
                )?;
                let transitions = match &self.transitions {
                    Some(t) => t.clone(),
                    None => {
                        crate::transition::TransitionModel::uninformative(self.config.n_levels)?
                    }
                };
                let em_cfg = crate::em::EmConfig::new(initial, transitions)
                    .with_lambda(self.config.lambda)
                    .with_max_iterations(self.config.max_iterations)
                    .with_tolerance(self.config.tolerance);
                let em = crate::em::train_em_with_parallelism(dataset, &em_cfg, &self.parallel)?;
                let (assignments, log_likelihood) =
                    assign_all_parallel(&em.model, dataset, &self.parallel)?;
                InvariantCtx::new().check_monotone("em decode", &assignments)?;
                let trace = em
                    .evidence_trace
                    .iter()
                    .enumerate()
                    .map(|(i, &ev)| IterationStats {
                        iteration: i + 1,
                        log_likelihood: ev,
                        n_changed: None,
                        seconds: 0.0,
                    })
                    .collect();
                Ok(TrainResult {
                    model: em.model,
                    assignments,
                    log_likelihood,
                    trace,
                    converged: em.converged,
                })
            }
        }
    }

    /// Trains chunk-at-a-time from any [`crate::chunked::ChunkSource`] —
    /// the out-of-core
    /// entry point ([`crate::chunked`]).
    ///
    /// In hard mode this is [`crate::chunked::train_chunked`]; in EM mode
    /// the chunked initializer feeds
    /// [`crate::chunked::train_em_chunked`] and the soft fit is closed
    /// with one streamed hard decode, mirroring [`Trainer::fit`]'s EM
    /// arm. Either way the result is bitwise identical to the matching
    /// sequential in-memory path on the materialized dataset, and peak
    /// memory stays bounded by `chunk_size × workers` (plus the
    /// `InMemory` storage's byte per action, if selected).
    pub fn fit_chunked<S: crate::chunked::ChunkSource + ?Sized>(
        &self,
        source: &S,
        storage: crate::chunked::AssignmentStorage,
    ) -> Result<crate::chunked::ChunkedTrainResult> {
        match self.mode {
            TrainMode::Hard => {
                crate::chunked::train_chunked(source, &self.config, &self.parallel, storage)
            }
            TrainMode::Em => {
                self.config.validate()?;
                let initial = crate::chunked::initialize_model_chunked(
                    source,
                    self.config.n_levels,
                    self.config.min_init_actions,
                    self.config.lambda,
                )?;
                let transitions = match &self.transitions {
                    Some(t) => t.clone(),
                    None => {
                        crate::transition::TransitionModel::uninformative(self.config.n_levels)?
                    }
                };
                let em_cfg = crate::em::EmConfig::new(initial, transitions)
                    .with_lambda(self.config.lambda)
                    .with_max_iterations(self.config.max_iterations)
                    .with_tolerance(self.config.tolerance);
                let em = crate::chunked::train_em_chunked(source, &em_cfg, &self.parallel)?;
                let (level_histogram, log_likelihood) =
                    crate::chunked::level_histogram_chunked(source, &em.model, &self.parallel)?;
                let trace = em
                    .evidence_trace
                    .iter()
                    .enumerate()
                    .map(|(i, &ev)| IterationStats {
                        iteration: i + 1,
                        log_likelihood: ev,
                        n_changed: None,
                        seconds: 0.0,
                    })
                    .collect();
                Ok(crate::chunked::ChunkedTrainResult {
                    model: em.model,
                    log_likelihood,
                    trace,
                    converged: em.converged,
                    level_histogram,
                    n_users: source.n_users(),
                    n_actions: source.n_actions(),
                })
            }
        }
    }

    /// Trains on `dataset` and immediately resumes a live
    /// [`StreamingSession`](crate::streaming::StreamingSession) over it.
    ///
    /// In EM mode the session is a **soft continuation**
    /// ([`StreamingSession::resume_em`](crate::streaming::StreamingSession::resume_em)):
    /// the EM-fitted model is preserved bit for bit and later refits
    /// replay responsibility mass instead of falling back to a
    /// hard-count retrain of the soft fit.
    pub fn fit_session(
        &self,
        dataset: Dataset,
        policy: crate::streaming::RefitPolicy,
    ) -> Result<crate::streaming::StreamingSession> {
        let result = self.fit(&dataset)?;
        match self.mode {
            TrainMode::Hard => crate::streaming::StreamingSession::resume(
                dataset,
                &result,
                self.config,
                self.parallel,
                policy,
            ),
            TrainMode::Em => {
                let transitions = match &self.transitions {
                    Some(t) => t.clone(),
                    None => {
                        crate::transition::TransitionModel::uninformative(self.config.n_levels)?
                    }
                };
                crate::streaming::StreamingSession::resume_em(
                    dataset,
                    &result,
                    transitions,
                    self.config,
                    self.parallel,
                    policy,
                )
            }
        }
    }
}

/// Trains a skill model with explicit parallelization flags (§IV-C).
pub fn train_with_parallelism(
    dataset: &Dataset,
    config: &TrainConfig,
    parallel: &ParallelConfig,
) -> Result<TrainResult> {
    config.validate()?;
    parallel.validate()?;
    if dataset.n_actions() == 0 {
        return Err(CoreError::EmptyDataset);
    }

    let mut model = initialize_model(
        dataset,
        config.n_levels,
        config.min_init_actions,
        config.lambda,
    )?;
    let mut prev_assignments: Option<SkillAssignments> = None;
    let mut prev_ll = f64::NEG_INFINITY;
    let mut trace = Vec::new();
    let mut converged = false;
    // Persistent sufficient statistics for the incremental update path:
    // built from scratch on the first iteration, then maintained by
    // per-action deltas wherever the assigned level moved.
    let mut grid: Option<StatsGrid> = None;
    // Persistent emission table for the same path: the update step reuses
    // the previous distributions for levels its delta never touched, so
    // only the refit levels' table columns need recomputing.
    let mut table: Option<EmissionTable> = None;
    let mut refit_levels: Vec<bool> = Vec::new();
    let ctx = InvariantCtx::new();

    for iteration in 1..=config.max_iterations {
        let iter_start = Instant::now();
        let (assignments, ll) =
            assign_step(&model, dataset, parallel, &mut table, &refit_levels, ctx)?;
        ctx.check_monotone("training assignment", &assignments)?;
        ctx.check_assign_step_optimal(
            "training assignment step",
            &model,
            table.as_ref(),
            dataset,
            prev_assignments.as_ref(),
            ll,
        )?;

        // Maintain the statistics and measure churn. On the incremental
        // path the delta application *is* the churn count — no separate
        // diff pass.
        let n_changed: Option<usize> = if parallel.incremental {
            match (grid.as_mut(), &prev_assignments) {
                (Some(g), Some(prev)) => {
                    Some(g.apply_delta_with_config(dataset, prev, &assignments, parallel)?)
                }
                _ => {
                    grid = Some(StatsGrid::build_with_config(
                        dataset,
                        &assignments,
                        config.n_levels,
                        parallel,
                    )?);
                    None
                }
            }
        } else {
            match &prev_assignments {
                Some(prev) => Some(count_changed(prev, &assignments)?),
                None => None,
            }
        };
        // The incrementally maintained grid must match a from-scratch
        // accumulation of the current assignments (debug builds and
        // `strict-invariants`; see `crate::invariants`).
        if let Some(g) = &grid {
            ctx.check_grid(g, dataset, &assignments)?;
        }

        let stable = n_changed == Some(0);
        let small_gain = prev_ll.is_finite()
            && (ll - prev_ll).abs() <= config.tolerance * prev_ll.abs().max(1.0);
        // Refit parameters (on convergence: one last time, so Θ is optimal
        // for the final Σ). The incremental path refits only the levels
        // the delta touched, reusing the previous model's rows elsewhere;
        // remember which levels those were so the next assignment step can
        // refresh just their emission-table columns.
        if let Some(g) = &grid {
            refit_levels = g.dirty_levels().to_vec();
        }
        model = refit(
            dataset,
            &assignments,
            grid.as_mut(),
            &model,
            config,
            parallel,
        )?;
        trace.push(IterationStats {
            iteration,
            log_likelihood: ll,
            n_changed,
            seconds: iter_start.elapsed().as_secs_f64(),
        });
        if stable || small_gain {
            converged = true;
            return Ok(TrainResult {
                model,
                assignments,
                log_likelihood: ll,
                trace,
                converged,
            });
        }
        prev_assignments = Some(assignments);
        prev_ll = ll;
    }

    // Iteration cap reached; produce a consistent final state and record
    // it in the trace so `log_likelihood` always agrees with
    // `trace.last()`.
    let iter_start = Instant::now();
    let (assignments, ll) = assign_step(&model, dataset, parallel, &mut table, &refit_levels, ctx)?;
    ctx.check_monotone("training assignment", &assignments)?;
    ctx.check_assign_step_optimal(
        "training assignment step",
        &model,
        table.as_ref(),
        dataset,
        prev_assignments.as_ref(),
        ll,
    )?;
    let n_changed = match &prev_assignments {
        Some(prev) => Some(count_changed(prev, &assignments)?),
        None => None,
    };
    trace.push(IterationStats {
        iteration: config.max_iterations + 1,
        log_likelihood: ll,
        n_changed,
        seconds: iter_start.elapsed().as_secs_f64(),
    });
    Ok(TrainResult {
        model,
        assignments,
        log_likelihood: ll,
        trace,
        converged,
    })
}

/// Assignment step. On the incremental path the emission table persists
/// across iterations: only the columns of levels the previous update
/// actually refit are recomputed (untouched levels reuse the previous
/// distributions bit for bit, so their cached scores are still exact).
/// Elsewhere this defers to [`assign_all_parallel`], which rebuilds (or
/// skips) the table per `config.emission`.
fn assign_step(
    model: &SkillModel,
    dataset: &Dataset,
    parallel: &ParallelConfig,
    table: &mut Option<EmissionTable>,
    refit_levels: &[bool],
    ctx: InvariantCtx,
) -> Result<(SkillAssignments, f64)> {
    if !(parallel.emission && parallel.incremental) {
        return assign_all_parallel(model, dataset, parallel);
    }
    if refit_levels.len() == model.n_levels() {
        if let Some(t) = table.as_mut() {
            t.refresh_levels(model, dataset, refit_levels)?;
            ctx.check_emission_table(t)?;
            return assign_all_parallel_with_table(t, dataset, parallel);
        }
    }
    let built = if parallel.users && parallel.threads > 1 {
        EmissionTable::build_parallel(model, dataset, parallel.threads)?
    } else {
        EmissionTable::build(model, dataset)
    };
    let t = table.insert(built);
    ctx.check_emission_table(t)?;
    assign_all_parallel_with_table(t, dataset, parallel)
}

/// Update step: fits from the persistent [`StatsGrid`] when the
/// incremental path is active, otherwise re-accumulates from the dataset.
fn refit(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    grid: Option<&mut StatsGrid>,
    prev_model: &SkillModel,
    config: &TrainConfig,
    parallel: &ParallelConfig,
) -> Result<SkillModel> {
    match grid {
        Some(g) => g.fit_model_incremental(dataset, config.lambda, parallel, Some(prev_model)),
        None => fit_model_parallel(
            dataset,
            assignments,
            config.n_levels,
            config.lambda,
            parallel,
        ),
    }
}

/// Counts actions whose assigned level differs between two assignments.
/// Ragged inputs (different user counts or per-user lengths) are an error,
/// never silently truncated.
fn count_changed(a: &SkillAssignments, b: &SkillAssignments) -> Result<usize> {
    if a.per_user.len() != b.per_user.len() {
        return Err(CoreError::LengthMismatch {
            context: "previous vs next assignments",
            left: a.per_user.len(),
            right: b.per_user.len(),
        });
    }
    let mut total = 0usize;
    for (x, y) in a.per_user.iter().zip(&b.per_user) {
        if x.len() != y.len() {
            return Err(CoreError::LengthMismatch {
                context: "previous vs next assignment lengths",
                left: x.len(),
                right: y.len(),
            });
        }
        total += x.iter().zip(y).filter(|(l, r)| l != r).count();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::{Action, ActionSequence};

    /// Dataset where users progress through item categories over time.
    fn progression_dataset(n_users: usize, len: usize, n_cats: u32) -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical {
                cardinality: n_cats,
            },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..n_cats)
            .map(|c| {
                vec![
                    FeatureValue::Categorical(c),
                    FeatureValue::Count(1 + 4 * c as u64),
                ]
            })
            .collect();
        let sequences: Vec<ActionSequence> = (0..n_users as u32)
            .map(|u| {
                let actions: Vec<Action> = (0..len)
                    .map(|t| {
                        let cat = (t * n_cats as usize / len) as u32;
                        Action::new(t as i64, u, cat)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::new(0).validate().is_err());
        assert!(TrainConfig::new(3).with_lambda(-1.0).validate().is_err());
        assert!(TrainConfig::new(3)
            .with_max_iterations(0)
            .validate()
            .is_err());
        assert!(TrainConfig::new(3).validate().is_ok());
    }

    #[test]
    fn empty_dataset_rejected() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        let ds = Dataset::new(schema, vec![], vec![]).unwrap();
        let cfg = TrainConfig::new(2).with_min_init_actions(1);
        assert!(matches!(train(&ds, &cfg), Err(CoreError::EmptyDataset)));
    }

    #[test]
    fn training_converges_on_progression_data() {
        let ds = progression_dataset(10, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        assert!(result.converged, "trace: {:?}", result.trace);
        assert!(result.assignments.is_monotone());
        // Learned model should separate the categories by level.
        let easy = vec![FeatureValue::Categorical(0), FeatureValue::Count(1)];
        let hard = vec![FeatureValue::Categorical(2), FeatureValue::Count(9)];
        assert!(
            result.model.item_log_likelihood(&easy, 1) > result.model.item_log_likelihood(&easy, 3)
        );
        assert!(
            result.model.item_log_likelihood(&hard, 3) > result.model.item_log_likelihood(&hard, 1)
        );
    }

    #[test]
    fn objective_is_nondecreasing_across_iterations() {
        let ds = progression_dataset(8, 15, 4);
        let cfg = TrainConfig::new(4).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        for w in result.trace.windows(2) {
            assert!(
                w[1].log_likelihood >= w[0].log_likelihood - 1e-6,
                "objective decreased: {:?}",
                result.trace
            );
        }
    }

    #[test]
    fn parallel_training_matches_sequential() {
        let ds = progression_dataset(6, 10, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let seq = train(&ds, &cfg).unwrap();
        let par = train_with_parallelism(&ds, &cfg, &ParallelConfig::all(3)).unwrap();
        assert_eq!(seq.assignments, par.assignments);
        assert!((seq.log_likelihood - par.log_likelihood).abs() < 1e-9);
    }

    #[test]
    fn trace_records_every_iteration() {
        let ds = progression_dataset(5, 8, 2);
        let cfg = TrainConfig::new(2).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        assert!(!result.trace.is_empty());
        assert_eq!(result.trace[0].iteration, 1);
        assert_eq!(result.trace[0].n_changed, None);
        for (i, stats) in result.trace.iter().enumerate() {
            assert_eq!(stats.iteration, i + 1);
            assert!(stats.n_changed.is_some() || i == 0);
            assert!(stats.seconds >= 0.0);
        }
    }

    #[test]
    fn iteration_cap_exit_records_final_trace_entry() {
        let ds = progression_dataset(6, 10, 3);
        let cfg = TrainConfig::new(3)
            .with_min_init_actions(4)
            .with_max_iterations(1);
        let result = train(&ds, &cfg).unwrap();
        assert!(!result.converged);
        // One capped iteration plus the closing assignment pass.
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace[1].iteration, 2);
        assert!(result.trace[1].n_changed.is_some());
        // The returned objective must agree with the last trace entry.
        let last = result.trace.last().unwrap();
        assert_eq!(result.log_likelihood, last.log_likelihood);
    }

    #[test]
    fn incremental_toggle_produces_identical_training() {
        let ds = progression_dataset(8, 14, 4);
        let cfg = TrainConfig::new(4).with_min_init_actions(4);
        let incremental = train_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let full = train_with_parallelism(
            &ds,
            &cfg,
            &ParallelConfig::sequential().with_incremental(false),
        )
        .unwrap();
        assert_eq!(incremental.assignments, full.assignments);
        assert_eq!(incremental.converged, full.converged);
        assert_eq!(incremental.trace.len(), full.trace.len());
        for (a, b) in incremental.trace.iter().zip(&full.trace) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.n_changed, b.n_changed);
            let scale = a.log_likelihood.abs().max(1.0);
            assert!((a.log_likelihood - b.log_likelihood).abs() <= 1e-9 * scale);
        }
        let scale = incremental.log_likelihood.abs().max(1.0);
        assert!((incremental.log_likelihood - full.log_likelihood).abs() <= 1e-9 * scale);
    }

    #[test]
    fn single_level_training_is_degenerate_but_valid() {
        let ds = progression_dataset(4, 6, 2);
        let cfg = TrainConfig::new(1).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        assert!(result.assignments.iter().all(|(_, _, s)| s == 1));
    }

    #[test]
    fn trainer_hard_mode_matches_free_function() {
        let ds = progression_dataset(6, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(6);
        let direct = train_with_parallelism(&ds, &cfg, &ParallelConfig::all(2)).unwrap();
        let built = Trainer::from_config(cfg).with_threads(2).fit(&ds).unwrap();
        assert_eq!(direct.assignments, built.assignments);
        assert_eq!(direct.converged, built.converged);
        assert!((direct.log_likelihood - built.log_likelihood).abs() < 1e-12);
    }

    #[test]
    fn trainer_em_mode_yields_uniform_result() {
        let ds = progression_dataset(6, 12, 3);
        let built = Trainer::new(3)
            .with_min_init_actions(6)
            .with_max_iterations(10)
            .em()
            .fit(&ds)
            .unwrap();
        assert!(built.assignments.is_monotone());
        assert_eq!(built.assignments.per_user.len(), 6);
        assert!(!built.trace.is_empty());
        assert!(built.trace.iter().all(|s| s.n_changed.is_none()));
        // The hard decode's path log-likelihood is what's reported.
        let (decoded, ll) =
            assign_all_parallel(&built.model, &ds, &ParallelConfig::sequential()).unwrap();
        assert_eq!(decoded, built.assignments);
        assert!((ll - built.log_likelihood).abs() < 1e-12);
    }

    #[test]
    fn trainer_builders_compose() {
        let t = Trainer::new(4)
            .with_lambda(0.5)
            .with_min_init_actions(7)
            .with_max_iterations(3)
            .with_tolerance(1e-3)
            .with_parallelism(
                ParallelConfig::sequential()
                    .with_users(true)
                    .with_threads(2),
            )
            .em()
            .hard();
        assert_eq!(t.config().n_levels, 4);
        assert!((t.config().lambda - 0.5).abs() < 1e-15);
        assert_eq!(t.config().min_init_actions, 7);
        assert_eq!(t.config().max_iterations, 3);
        assert!((t.config().tolerance - 1e-3).abs() < 1e-15);
        assert!(t.parallel().users);
        assert_eq!(t.mode(), TrainMode::Hard);
    }

    #[test]
    fn trainer_fit_session_resumes_streaming() {
        let ds = progression_dataset(6, 12, 3);
        let session = Trainer::new(3)
            .with_min_init_actions(6)
            .fit_session(ds.clone(), crate::streaming::RefitPolicy::EveryBatch)
            .unwrap();
        assert_eq!(session.n_users(), 6);
        assert_eq!(session.total_ingested(), 0);
        let direct = train(&ds, &TrainConfig::new(3).with_min_init_actions(6)).unwrap();
        assert_eq!(session.assignments(), &direct.assignments);
    }

    #[test]
    fn trainer_fit_session_dispatches_on_mode() {
        let ds = progression_dataset(6, 12, 3);
        let hard = Trainer::new(3)
            .with_min_init_actions(6)
            .fit_session(ds.clone(), crate::streaming::RefitPolicy::Manual)
            .unwrap();
        assert!(!hard.is_em());
        let soft = Trainer::new(3)
            .with_min_init_actions(6)
            .with_max_iterations(10)
            .em()
            .fit_session(ds, crate::streaming::RefitPolicy::Manual)
            .unwrap();
        assert!(soft.is_em());
    }

    #[test]
    fn count_changed_counts_pointwise() {
        let a = SkillAssignments {
            per_user: vec![vec![1, 1, 2], vec![3]],
        };
        let b = SkillAssignments {
            per_user: vec![vec![1, 2, 2], vec![3]],
        };
        assert_eq!(count_changed(&a, &b).unwrap(), 1);
        assert_eq!(count_changed(&a, &a).unwrap(), 0);
    }

    #[test]
    fn count_changed_rejects_ragged_inputs() {
        let a = SkillAssignments {
            per_user: vec![vec![1, 1, 2], vec![3]],
        };
        let fewer_users = SkillAssignments {
            per_user: vec![vec![1, 1, 2]],
        };
        assert!(matches!(
            count_changed(&a, &fewer_users),
            Err(CoreError::LengthMismatch { .. })
        ));
        let short_user = SkillAssignments {
            per_user: vec![vec![1, 1], vec![3]],
        };
        assert!(matches!(
            count_changed(&a, &short_user),
            Err(CoreError::LengthMismatch { .. })
        ));
    }
}
