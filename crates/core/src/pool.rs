//! Reusable workspace pooling for concurrent request handlers.
//!
//! The DP scratch buffers ([`AssignWorkspace`](crate::assign::AssignWorkspace),
//! [`FbWorkspace`](crate::em::FbWorkspace)) exist so hot loops allocate
//! once and reuse; a serving layer handling many short requests from many
//! threads needs the same amortization *across* requests. A
//! [`WorkspacePool`] keeps returned workspaces in a free list: acquiring
//! pops one (or builds a fresh one when the list is empty — the pool
//! never blocks a request on workspace availability), and the RAII
//! [`PoolGuard`] pushes it back on drop, warm buffers and all.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use crate::sync::lock;

/// A lock-guarded free list of reusable workspaces plus the factory that
/// builds new ones on demand.
///
/// The pool is unbounded in the sense that concurrent demand beyond the
/// free list is satisfied by fresh construction; the steady-state size
/// therefore converges to the peak concurrency actually seen.
pub struct WorkspacePool<T> {
    free: Mutex<Vec<T>>,
    make: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T> std::fmt::Debug for WorkspacePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("available", &self.available())
            .finish()
    }
}

impl<T> WorkspacePool<T> {
    /// Creates an empty pool; `make` builds a workspace when the free
    /// list cannot satisfy an [`WorkspacePool::acquire`].
    pub fn new(make: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            make: Box::new(make),
        }
    }

    /// Takes a pooled workspace, building a fresh one if none is free.
    /// The workspace returns to the pool when the guard drops.
    ///
    /// Lock poisoning is recovered from (via [`crate::sync::lock`]): the
    /// free list only ever holds complete workspaces (pushes and pops
    /// are single `Vec` operations), so a panicking peer cannot leave it
    /// inconsistent.
    pub fn acquire(&self) -> PoolGuard<'_, T> {
        let item = lock(&self.free).pop().unwrap_or_else(|| (self.make)());
        #[cfg(feature = "deterministic-sync")]
        crate::sync::explore::on_pool_event(true);
        PoolGuard {
            pool: self,
            item: Some(item),
        }
    }

    /// Number of workspaces currently sitting in the free list.
    pub fn available(&self) -> usize {
        lock(&self.free).len()
    }
}

/// RAII handle to a pooled workspace; dereferences to the workspace and
/// returns it to the pool on drop.
#[derive(Debug)]
pub struct PoolGuard<'a, T> {
    pool: &'a WorkspacePool<T>,
    /// `Some` until drop; `Option` only so drop can move the value out.
    item: Option<T>,
}

impl<T> Deref for PoolGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.item.as_ref() {
            Some(item) => item,
            // `item` is only taken in `drop`, so it is `Some` for the
            // guard's entire usable lifetime.
            None => unreachable!(),
        }
    }
}

impl<T> DerefMut for PoolGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.item.as_mut() {
            Some(item) => item,
            None => unreachable!(),
        }
    }
}

impl<T> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            lock(&self.pool.free).push(item);
            #[cfg(feature = "deterministic-sync")]
            crate::sync::explore::on_pool_event(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_returned_workspaces() {
        let pool = WorkspacePool::new(Vec::<u32>::new);
        assert_eq!(pool.available(), 0);
        {
            let mut a = pool.acquire();
            a.push(7);
            let b = pool.acquire();
            assert!(b.is_empty());
            assert_eq!(pool.available(), 0);
        }
        // Both guards returned their workspaces, warm state intact:
        // guards drop in reverse declaration order, so the LIFO free
        // list hands back `a`'s buffer (still holding the 7) first.
        assert_eq!(pool.available(), 2);
        let c = pool.acquire();
        assert_eq!(pool.available(), 1);
        assert_eq!(*c, vec![7]);
    }

    #[test]
    fn concurrent_acquire_is_safe_and_bounded_by_peak_demand() {
        let pool = WorkspacePool::new(|| vec![0u8; 16]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let mut ws = pool.acquire();
                        ws[0] = ws[0].wrapping_add(1);
                    }
                });
            }
        });
        // Never more parked workspaces than the peak thread count.
        assert!(pool.available() >= 1);
        assert!(pool.available() <= 8);
    }
}
