//! A tiny deterministic RNG (SplitMix64) used for data splits.
//!
//! `upskill-core` deliberately avoids a `rand` dependency; the only
//! randomness the library itself needs is the 90/10 train/test split of the
//! model-selection procedure, for which SplitMix64 is more than adequate
//! and keeps splits bit-reproducible across platforms.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014). Not cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `0..bound` (`bound > 0`), via rejection-free
    /// multiply-shift; bias is negligible for the bounds used here.
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let k = rng.next_below(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }
}
