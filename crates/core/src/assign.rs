//! The skill-assignment step: a Viterbi-style dynamic program over the
//! action–skill lattice (Fig. 2 and Eq. 4 of the paper).
//!
//! For a user sequence of length `n`, the DP computes
//! `L(u, n, s) = max_{δ∈{0,1}} L(u, n−1, s−δ) + log P(i_n | s)` and
//! backtracks the arg-max path, yielding the monotone non-decreasing skill
//! assignment that maximizes the sequence log-likelihood under the current
//! model parameters. Complexity: `O(|A_u| · F · S)`.

use crate::emission::{CompactEmissionTable, EmissionTable};
use crate::error::{CoreError, Result};
use crate::float_cmp::is_neg_infinity;
use crate::model::SkillModel;
use crate::types::{
    skill_level_from_index, ActionSequence, Dataset, ItemId, SkillAssignments, SkillLevel,
};

/// Result of assigning one sequence: the per-action levels and the path
/// log-likelihood.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceAssignment {
    /// Skill level of each action, monotone non-decreasing.
    pub levels: Vec<SkillLevel>,
    /// Log-likelihood of the best path.
    pub log_likelihood: f64,
}

/// Reusable scratch memory for the assignment DP.
///
/// One workspace holds the two rolling DP rows, the bit-packed backpointer
/// matrix, and (for the direct, table-less path) the per-action emission
/// buffer. Buffers grow to the largest sequence seen and are then reused,
/// so a sweep over a dataset performs **zero** per-sequence heap
/// allocations for DP scratch — only the returned `levels` vector (which
/// outlives the call) is allocated. Keep one workspace per worker thread;
/// the workspace carries no result state between calls, so reuse cannot
/// change any output bit.
#[derive(Debug, Clone, Default)]
pub struct AssignWorkspace {
    /// Rolling DP rows (`prev[s]` = best score ending at level `s+1`).
    prev: Vec<f64>,
    curr: Vec<f64>,
    /// Bit-packed backpointers: bit `t·S + s` is set when the best path
    /// into `(t, s)` advanced from level `s-1`.
    advanced: Vec<u64>,
    /// Emission buffer for the direct path (`emit[t·S + s]`).
    emit: Vec<f64>,
}

impl AssignWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows buffers to cover an `n × s_max` lattice and zeroes the
    /// backpointer words the forward pass will set. Grow-only: capacity is
    /// retained across sequences.
    fn prepare(&mut self, s_max: usize, n: usize) {
        if self.prev.len() < s_max {
            self.prev.resize(s_max, f64::NEG_INFINITY);
            self.curr.resize(s_max, f64::NEG_INFINITY);
        }
        let words = (n * s_max).div_ceil(64);
        if self.advanced.len() < words {
            self.advanced.resize(words, 0);
        }
        // The forward pass only *sets* bits, so clear the words in range.
        self.advanced[..words].fill(0);
    }
}

/// The monotone Viterbi DP over abstract emission rows.
///
/// `row_of(t)` yields the length-`s_max` emission vector of action `t`
/// (`row[s - 1] = log P(i_t | s)`). Both the direct path (a per-sequence
/// emission buffer) and the table-backed path (rows borrowed straight from
/// an [`EmissionTable`], no per-action allocation) funnel through this one
/// implementation, so their tie-breaking and backtracking are identical by
/// construction. All scratch lives in the caller-provided
/// [`AssignWorkspace`].
fn dp_over_rows<'a, F>(
    s_max: usize,
    n: usize,
    row_of: F,
    ws: &mut AssignWorkspace,
) -> Result<SequenceAssignment>
where
    F: Fn(usize) -> &'a [f64],
{
    debug_assert!(n > 0);
    ws.prepare(s_max, n);
    let mut prev: &mut [f64] = &mut ws.prev[..s_max];
    let mut curr: &mut [f64] = &mut ws.curr[..s_max];
    let advanced: &mut [u64] = &mut ws.advanced;

    // Forward pass. `prev[s]` = best score ending at level s+1; `below`
    // carries `prev[s-1]` into iteration `s` so the loop needs no
    // lookback indexing.
    prev.copy_from_slice(row_of(0));
    for t in 1..n {
        let emit_t = row_of(t);
        let mut below = f64::NEG_INFINITY;
        for (s, (cell, (&stay, &emit))) in curr.iter_mut().zip(prev.iter().zip(emit_t)).enumerate()
        {
            let (best, from_below) = if below > stay {
                (below, true)
            } else {
                (stay, false)
            };
            *cell = best + emit;
            if from_below {
                let idx = t * s_max + s;
                // lint:allow(hot-loop-index): bit-packed backpointer word;
                // idx < n·s_max by construction of the lattice.
                advanced[idx / 64] |= 1u64 << (idx % 64);
            }
            below = stay;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    // Terminal arg-max; ties break toward the lower level for determinism.
    let (mut best_s, mut best_ll) = (0usize, f64::NEG_INFINITY);
    for (s, &ll) in prev.iter().enumerate() {
        if ll > best_ll {
            best_ll = ll;
            best_s = s;
        }
    }
    if is_neg_infinity(best_ll) {
        // Every path impossible under the model (can only happen with
        // unsmoothed distributions); fall back to the flattest valid path.
        return Err(CoreError::DegenerateFit {
            distribution: "skill DP",
            reason: "all paths have zero probability; enable smoothing",
        });
    }

    // Backtrack.
    let mut levels: Vec<SkillLevel> = vec![0; n];
    let mut s = best_s;
    for (t, level) in levels.iter_mut().enumerate().rev() {
        *level = skill_level_from_index(s);
        let idx = t * s_max + s;
        // lint:allow(hot-loop-index): bit-packed backpointer word, same
        // bound as the forward pass.
        if t > 0 && advanced[idx / 64] & (1u64 << (idx % 64)) != 0 {
            s -= 1;
        }
    }
    debug_assert!(levels.windows(2).all(|w| w[0] <= w[1]));
    Ok(SequenceAssignment {
        levels,
        log_likelihood: best_ll,
    })
}

/// Assigns skill levels to one sequence via the monotone DP.
///
/// The initial skill is unconstrained (users may enter the data already
/// skilled); between consecutive actions the level either stays or
/// increments by one.
///
/// Evaluates emissions directly (`O(n · F · S)` distribution calls). When
/// assigning many sequences against one model, build an [`EmissionTable`]
/// and use [`assign_sequence_with_table`] instead.
pub fn assign_sequence(
    model: &SkillModel,
    dataset: &Dataset,
    sequence: &ActionSequence,
) -> Result<SequenceAssignment> {
    assign_sequence_ws(model, dataset, sequence, &mut AssignWorkspace::new())
}

/// [`assign_sequence`] with caller-provided scratch; reuse the workspace
/// across sequences to avoid per-sequence allocation.
pub fn assign_sequence_ws(
    model: &SkillModel,
    dataset: &Dataset,
    sequence: &ActionSequence,
    ws: &mut AssignWorkspace,
) -> Result<SequenceAssignment> {
    let s_max = model.n_levels();
    let n = sequence.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }

    // Per-action emission scores: emit[t * s_max + (s-1)]. The buffer is
    // taken out of the workspace so the DP can borrow the rest mutably.
    let mut emit = std::mem::take(&mut ws.emit);
    if emit.len() < n * s_max {
        emit.resize(n * s_max, 0.0);
    }
    for (row, action) in emit.chunks_mut(s_max).zip(sequence.actions()) {
        let features = dataset.item_features(action.item);
        for (s0, cell) in row.iter_mut().enumerate() {
            *cell = model.item_log_likelihood(features, skill_level_from_index(s0));
        }
    }
    let result = dp_over_rows(s_max, n, |t| &emit[t * s_max..(t + 1) * s_max], ws);
    ws.emit = emit;
    result
}

/// Assigns skill levels to one sequence, reading emissions from a
/// precomputed [`EmissionTable`].
///
/// The DP inner loop walks table rows in place — no per-action emission
/// buffer is allocated and no distribution is evaluated. Produces exactly
/// the same assignment as [`assign_sequence`] with the model the table was
/// built from.
pub fn assign_sequence_with_table(
    table: &EmissionTable,
    sequence: &ActionSequence,
) -> Result<SequenceAssignment> {
    assign_sequence_with_table_ws(table, sequence, &mut AssignWorkspace::new())
}

/// [`assign_sequence_with_table`] with caller-provided scratch; reuse the
/// workspace across sequences to avoid per-sequence allocation.
pub fn assign_sequence_with_table_ws(
    table: &EmissionTable,
    sequence: &ActionSequence,
    ws: &mut AssignWorkspace,
) -> Result<SequenceAssignment> {
    let n = sequence.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    let actions = sequence.actions();
    for action in actions {
        if action.item as usize >= table.n_items() {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: action.item as usize,
                len: table.n_items(),
            });
        }
    }
    dp_over_rows(table.n_levels(), n, |t| table.row(actions[t].item), ws)
}

/// Table-backed assignment over a bare item-id slice (the columnar
/// chunked layout of [`crate::chunked::DatasetChunk`]).
///
/// Identical DP to [`assign_sequence_with_table_ws`] — both funnel
/// through `dp_over_rows` with rows borrowed from the table — so the
/// levels and log-likelihood are bitwise identical to assigning the
/// same actions through an [`ActionSequence`]. Timestamps never enter
/// the DP, which is why the item column alone suffices.
pub fn assign_items_with_table_ws(
    table: &EmissionTable,
    items: &[ItemId],
    ws: &mut AssignWorkspace,
) -> Result<SequenceAssignment> {
    let n = items.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    for &item in items {
        if item as usize >= table.n_items() {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: item as usize,
                len: table.n_items(),
            });
        }
    }
    dp_over_rows(table.n_levels(), n, |t| table.row(items[t]), ws)
}

/// Assigns skill levels to one sequence, reading emissions from an
/// f32-storage [`CompactEmissionTable`].
///
/// Unlike the f64 table path, rows cannot be borrowed in place — each
/// action's row is widened back to `f64` into the workspace emission
/// buffer, then the same `dp_over_rows` core runs over it. The DP
/// therefore sees each table cell rounded to `f32` exactly once; paths
/// whose scores are separated by more than the rounding error decode to
/// the same levels as the f64 path.
pub fn assign_sequence_with_compact_table(
    table: &CompactEmissionTable,
    sequence: &ActionSequence,
) -> Result<SequenceAssignment> {
    assign_sequence_with_compact_table_ws(table, sequence, &mut AssignWorkspace::new())
}

/// [`assign_sequence_with_compact_table`] with caller-provided scratch;
/// reuse the workspace across sequences to avoid per-sequence allocation.
pub fn assign_sequence_with_compact_table_ws(
    table: &CompactEmissionTable,
    sequence: &ActionSequence,
    ws: &mut AssignWorkspace,
) -> Result<SequenceAssignment> {
    let n = sequence.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    let s_max = table.n_levels();
    if s_max == 0 {
        return Err(CoreError::DegenerateFit {
            distribution: "skill DP",
            reason: "compact emission table has zero levels",
        });
    }
    let actions = sequence.actions();
    for action in actions {
        if action.item as usize >= table.n_items() {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: action.item as usize,
                len: table.n_items(),
            });
        }
    }

    let mut emit = std::mem::take(&mut ws.emit);
    if emit.len() < n * s_max {
        emit.resize(n * s_max, 0.0);
    }
    for (row, action) in emit.chunks_mut(s_max).zip(actions) {
        if !table.fill_row(action.item, row) {
            ws.emit = emit;
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: action.item as usize,
                len: table.n_items(),
            });
        }
    }
    let result = dp_over_rows(s_max, n, |t| &emit[t * s_max..(t + 1) * s_max], ws);
    ws.emit = emit;
    result
}

/// Assigns every sequence in the dataset sequentially.
///
/// Returns the assignments plus the total data log-likelihood (Eq. 3
/// evaluated at the optimum of the assignment step).
///
/// Builds a shared [`EmissionTable`] once and reuses it for every
/// sequence — `O(n_items · F · S)` distribution evaluations instead of
/// `O(Σ_u |A_u| · F · S)`. Use [`assign_all_direct`] to skip the table
/// (e.g. when a model is consulted for a single pass over few actions).
pub fn assign_all(model: &SkillModel, dataset: &Dataset) -> Result<(SkillAssignments, f64)> {
    let table = EmissionTable::build(model, dataset);
    assign_all_with_table(&table, dataset)
}

/// Assigns every sequence against an existing [`EmissionTable`].
pub fn assign_all_with_table(
    table: &EmissionTable,
    dataset: &Dataset,
) -> Result<(SkillAssignments, f64)> {
    if table.n_items() < dataset.n_items() {
        return Err(CoreError::LengthMismatch {
            context: "emission table items vs dataset items",
            left: table.n_items(),
            right: dataset.n_items(),
        });
    }
    let mut ws = AssignWorkspace::new();
    let mut per_user = Vec::with_capacity(dataset.n_users());
    let mut total_ll = 0.0;
    for seq in dataset.sequences() {
        let a = assign_sequence_with_table_ws(table, seq, &mut ws)?;
        total_ll += a.log_likelihood;
        per_user.push(a.levels);
    }
    Ok((SkillAssignments { per_user }, total_ll))
}

/// Assigns every sequence against an existing [`CompactEmissionTable`].
pub fn assign_all_with_compact_table(
    table: &CompactEmissionTable,
    dataset: &Dataset,
) -> Result<(SkillAssignments, f64)> {
    if table.n_items() < dataset.n_items() {
        return Err(CoreError::LengthMismatch {
            context: "emission table items vs dataset items",
            left: table.n_items(),
            right: dataset.n_items(),
        });
    }
    let mut ws = AssignWorkspace::new();
    let mut per_user = Vec::with_capacity(dataset.n_users());
    let mut total_ll = 0.0;
    for seq in dataset.sequences() {
        let a = assign_sequence_with_compact_table_ws(table, seq, &mut ws)?;
        total_ll += a.log_likelihood;
        per_user.push(a.levels);
    }
    Ok((SkillAssignments { per_user }, total_ll))
}

/// Assigns every sequence without the shared emission table, evaluating
/// distributions per action. Kept as the measurable baseline for the
/// table-backed path (see `ParallelConfig::emission` and the assignment
/// benches); semantically identical to [`assign_all`].
pub fn assign_all_direct(model: &SkillModel, dataset: &Dataset) -> Result<(SkillAssignments, f64)> {
    let mut ws = AssignWorkspace::new();
    let mut per_user = Vec::with_capacity(dataset.n_users());
    let mut total_ll = 0.0;
    for seq in dataset.sequences() {
        let a = assign_sequence_ws(model, dataset, seq, &mut ws)?;
        total_ll += a.log_likelihood;
        per_user.push(a.levels);
    }
    Ok((SkillAssignments { per_user }, total_ll))
}

/// Exhaustive-search reference implementation used to validate the DP.
///
/// Enumerates every monotone non-decreasing path (there are
/// `C(n + S - 1, S - 1)`-ish of them restricted to +1 steps) and returns the
/// best. Exponential; only call on tiny sequences in tests.
#[doc(hidden)]
pub fn assign_sequence_bruteforce(
    model: &SkillModel,
    dataset: &Dataset,
    sequence: &ActionSequence,
) -> Result<SequenceAssignment> {
    let s_max = model.n_levels();
    let n = sequence.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    let emissions: Vec<Vec<f64>> = sequence
        .actions()
        .iter()
        .map(|a| model.item_log_likelihoods(dataset.item_features(a.item)))
        .collect();

    let mut best: Option<SequenceAssignment> = None;
    // Recursive enumeration of stay/+1 paths from every starting level.
    fn recurse(
        emissions: &[Vec<f64>],
        s_max: usize,
        t: usize,
        s: usize,
        ll: f64,
        path: &mut Vec<SkillLevel>,
        best: &mut Option<SequenceAssignment>,
    ) {
        let ll = ll + emissions[t][s];
        path.push(skill_level_from_index(s));
        if t + 1 == emissions.len() {
            let better = match best {
                Some(b) => ll > b.log_likelihood,
                None => true,
            };
            if better {
                *best = Some(SequenceAssignment {
                    levels: path.clone(),
                    log_likelihood: ll,
                });
            }
        } else {
            recurse(emissions, s_max, t + 1, s, ll, path, best);
            if s + 1 < s_max {
                recurse(emissions, s_max, t + 1, s + 1, ll, path, best);
            }
        }
        path.pop();
    }
    for s in 0..s_max {
        recurse(&emissions, s_max, 0, s, 0.0, &mut Vec::new(), &mut best);
    }
    best.ok_or(CoreError::EmptyDataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::Action;

    /// Model with S levels over a single categorical feature of cardinality S,
    /// where level s strongly prefers category s-1.
    fn diagonal_model(s_max: usize) -> SkillModel {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical {
            cardinality: s_max as u32,
        }])
        .unwrap();
        let cells = (0..s_max)
            .map(|s| {
                let mut probs = vec![0.1 / (s_max as f64 - 1.0).max(1.0); s_max];
                probs[s] = 0.9;
                let total: f64 = probs.iter().sum();
                for p in probs.iter_mut() {
                    *p /= total;
                }
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(probs).unwrap(),
                )]
            })
            .collect();
        SkillModel::new(schema, s_max, cells).unwrap()
    }

    fn dataset_for(s_max: usize, item_cats: &[u32]) -> (Dataset, ActionSequence) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical {
            cardinality: s_max as u32,
        }])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..s_max as u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let actions: Vec<Action> = item_cats
            .iter()
            .enumerate()
            .map(|(t, &c)| Action::new(t as i64, 0, c))
            .collect();
        let seq = ActionSequence::new(0, actions).unwrap();
        let ds = Dataset::new(schema, items, vec![seq.clone()]).unwrap();
        (ds, seq)
    }

    #[test]
    fn empty_sequence_is_trivial() {
        let model = diagonal_model(3);
        let (ds, _) = dataset_for(3, &[0]);
        let empty = ActionSequence::new(1, vec![]).unwrap();
        let a = assign_sequence(&model, &ds, &empty).unwrap();
        assert!(a.levels.is_empty());
        assert_eq!(a.log_likelihood, 0.0);
    }

    #[test]
    fn staircase_sequence_gets_staircase_assignment() {
        let model = diagonal_model(3);
        let (ds, seq) = dataset_for(3, &[0, 0, 1, 1, 2, 2]);
        let a = assign_sequence(&model, &ds, &seq).unwrap();
        assert_eq!(a.levels, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn sequence_may_start_at_high_level() {
        let model = diagonal_model(3);
        let (ds, seq) = dataset_for(3, &[2, 2, 2]);
        let a = assign_sequence(&model, &ds, &seq).unwrap();
        assert_eq!(a.levels, vec![3, 3, 3]);
    }

    #[test]
    fn sequence_may_never_reach_top() {
        let model = diagonal_model(3);
        let (ds, seq) = dataset_for(3, &[0, 0, 0, 0]);
        let a = assign_sequence(&model, &ds, &seq).unwrap();
        assert_eq!(a.levels, vec![1, 1, 1, 1]);
    }

    #[test]
    fn monotonicity_always_holds() {
        let model = diagonal_model(4);
        // Adversarial: skill-suggesting categories go down.
        let (ds, seq) = dataset_for(4, &[3, 2, 1, 0, 1, 3]);
        let a = assign_sequence(&model, &ds, &seq).unwrap();
        assert!(a.levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_step_constraint_respected() {
        let model = diagonal_model(5);
        // Jump from category 0 straight to 4; levels can only climb 1/action.
        let (ds, seq) = dataset_for(5, &[0, 4, 4, 4, 4, 4]);
        let a = assign_sequence(&model, &ds, &seq).unwrap();
        for w in a.levels.windows(2) {
            assert!(w[1] - w[0] <= 1);
        }
    }

    #[test]
    fn dp_matches_bruteforce() {
        let model = diagonal_model(3);
        // Exhaustive over all length-5 category patterns (3^5 = 243 cases).
        for pattern_id in 0..243u32 {
            let mut cats = Vec::with_capacity(5);
            let mut x = pattern_id;
            for _ in 0..5 {
                cats.push(x % 3);
                x /= 3;
            }
            let (ds, seq) = dataset_for(3, &cats);
            let dp = assign_sequence(&model, &ds, &seq).unwrap();
            let bf = assign_sequence_bruteforce(&model, &ds, &seq).unwrap();
            assert!(
                (dp.log_likelihood - bf.log_likelihood).abs() < 1e-9,
                "pattern {cats:?}: dp {} vs bf {}",
                dp.log_likelihood,
                bf.log_likelihood
            );
        }
    }

    #[test]
    fn assign_all_sums_loglikelihoods() {
        let model = diagonal_model(2);
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let s0 = ActionSequence::new(0, vec![Action::new(0, 0, 0), Action::new(1, 0, 1)]).unwrap();
        let s1 = ActionSequence::new(1, vec![Action::new(0, 1, 1)]).unwrap();
        let ds = Dataset::new(schema, items, vec![s0.clone(), s1.clone()]).unwrap();
        let (assignments, total) = assign_all(&model, &ds).unwrap();
        let a0 = assign_sequence(&model, &ds, &s0).unwrap();
        let a1 = assign_sequence(&model, &ds, &s1).unwrap();
        assert!((total - (a0.log_likelihood + a1.log_likelihood)).abs() < 1e-12);
        assert!(assignments.is_monotone());
        assert_eq!(assignments.n_actions(), 3);
    }

    #[test]
    fn table_backed_assignment_is_bitwise_identical() {
        let model = diagonal_model(4);
        let (ds, seq) = dataset_for(4, &[0, 1, 1, 3, 2, 0, 3]);
        let table = EmissionTable::build(&model, &ds);
        let direct = assign_sequence(&model, &ds, &seq).unwrap();
        let tabled = assign_sequence_with_table(&table, &seq).unwrap();
        assert_eq!(direct.levels, tabled.levels);
        assert_eq!(direct.log_likelihood, tabled.log_likelihood);

        let (a_direct, ll_direct) = assign_all_direct(&model, &ds).unwrap();
        let (a_table, ll_table) = assign_all(&model, &ds).unwrap();
        assert_eq!(a_direct, a_table);
        assert_eq!(ll_direct, ll_table);
    }

    #[test]
    fn item_slice_assignment_is_bitwise_identical() {
        let model = diagonal_model(4);
        let (ds, seq) = dataset_for(4, &[0, 1, 1, 3, 2, 0, 3]);
        let table = EmissionTable::build(&model, &ds);
        let tabled = assign_sequence_with_table(&table, &seq).unwrap();
        let items: Vec<ItemId> = seq.actions().iter().map(|a| a.item).collect();
        let sliced =
            assign_items_with_table_ws(&table, &items, &mut AssignWorkspace::new()).unwrap();
        assert_eq!(tabled.levels, sliced.levels);
        assert_eq!(tabled.log_likelihood, sliced.log_likelihood);

        let empty = assign_items_with_table_ws(&table, &[], &mut AssignWorkspace::new()).unwrap();
        assert!(empty.levels.is_empty());
        assert_eq!(empty.log_likelihood, 0.0);
        assert!(matches!(
            assign_items_with_table_ws(&table, &[99], &mut AssignWorkspace::new()),
            Err(CoreError::FeatureIndexOutOfBounds { index: 99, .. })
        ));
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        let model = diagonal_model(4);
        let table_ds = dataset_for(4, &[0, 1, 2, 3]).0;
        let table = EmissionTable::build(&model, &table_ds);
        // Reuse one workspace across sequences of very different lengths,
        // in shrinking order so stale buffer contents would be exposed.
        let patterns: Vec<Vec<u32>> = vec![
            vec![0, 1, 1, 3, 2, 0, 3, 3, 2, 1, 0, 2],
            vec![3, 2, 1, 0, 1, 3],
            vec![2, 2],
            vec![1],
        ];
        let mut ws = AssignWorkspace::new();
        for cats in &patterns {
            let (ds, seq) = dataset_for(4, cats);
            let fresh = assign_sequence(&model, &ds, &seq).unwrap();
            let reused = assign_sequence_ws(&model, &ds, &seq, &mut ws).unwrap();
            assert_eq!(fresh.levels, reused.levels);
            assert_eq!(fresh.log_likelihood, reused.log_likelihood);
            let tabled = assign_sequence_with_table_ws(&table, &seq, &mut ws).unwrap();
            assert_eq!(fresh.levels, tabled.levels);
            assert_eq!(fresh.log_likelihood, tabled.log_likelihood);
        }
    }

    #[test]
    fn compact_table_assignment_matches_f64_on_separated_levels() {
        let model = diagonal_model(4);
        let (ds, seq) = dataset_for(4, &[0, 1, 1, 3, 2, 0, 3]);
        let table = EmissionTable::build(&model, &ds);
        let compact = CompactEmissionTable::from_table(&table);
        let full = assign_sequence_with_table(&table, &seq).unwrap();
        let small = assign_sequence_with_compact_table(&compact, &seq).unwrap();
        // Level probabilities are well separated (0.9 vs ~0.033), so a
        // single f32 rounding per cell cannot flip any DP comparison.
        assert_eq!(full.levels, small.levels);
        let rel =
            (full.log_likelihood - small.log_likelihood).abs() / full.log_likelihood.abs().max(1.0);
        assert!(rel < 1e-6, "relative ll gap {rel}");

        let (a_full, ll_full) = assign_all_with_table(&table, &ds).unwrap();
        let (a_small, ll_small) = assign_all_with_compact_table(&compact, &ds).unwrap();
        assert_eq!(a_full, a_small);
        assert!((ll_full - ll_small).abs() / ll_full.abs().max(1.0) < 1e-6);
    }

    #[test]
    fn compact_table_assignment_rejects_unknown_items() {
        let model = diagonal_model(2);
        let (ds, _) = dataset_for(2, &[0, 1]);
        let compact = CompactEmissionTable::build(&model, &ds);
        let rogue = ActionSequence::new(5, vec![Action::new(0, 5, 7)]).unwrap();
        assert!(matches!(
            assign_sequence_with_compact_table(&compact, &rogue),
            Err(CoreError::FeatureIndexOutOfBounds { .. })
        ));
        let empty = ActionSequence::new(6, vec![]).unwrap();
        let a = assign_sequence_with_compact_table(&compact, &empty).unwrap();
        assert!(a.levels.is_empty());
        assert_eq!(a.log_likelihood, 0.0);
    }

    #[test]
    fn table_assignment_rejects_unknown_items() {
        let model = diagonal_model(2);
        let (ds, _) = dataset_for(2, &[0, 1]);
        let table = EmissionTable::build(&model, &ds);
        // A sequence that references an item the table does not cover.
        let rogue = ActionSequence::new(5, vec![Action::new(0, 5, 7)]).unwrap();
        assert!(matches!(
            assign_sequence_with_table(&table, &rogue),
            Err(CoreError::FeatureIndexOutOfBounds { .. })
        ));
        // Empty sequences stay trivial through the table path too.
        let empty = ActionSequence::new(6, vec![]).unwrap();
        let a = assign_sequence_with_table(&table, &empty).unwrap();
        assert!(a.levels.is_empty());
        assert_eq!(a.log_likelihood, 0.0);
    }
}
