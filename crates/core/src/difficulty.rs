//! Item difficulty estimation (paper §V).
//!
//! Both estimators reuse a trained skill model, under the assumption that
//! users usually select items within their skill capacity:
//!
//! - [`assignment_difficulty`] (Eq. 8) — the mean assigned skill of the
//!   users who selected the item. Intuitive, but undefined for unseen items
//!   and noisy for rare ones.
//! - [`generation_difficulty`] (Eq. 9–10) — the posterior-expected skill
//!   level of the item under the generative model, with a
//!   [`SkillPrior::Uniform`] or [`SkillPrior::Empirical`] prior. Works for
//!   *any* feature tuple, including brand-new items.

use serde::{Deserialize, Serialize};

use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::feature::FeatureValue;
use crate::model::SkillModel;
use crate::types::{Dataset, ItemId, SkillAssignments};

/// Which skill prior `P(s)` the generation-based estimator uses (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkillPrior {
    /// `P(s) = 1/S` — the query-likelihood simplification.
    Uniform,
    /// `P(s)` estimated from the trained assignments' level histogram.
    Empirical,
}

/// Difficulty level of every item via the assignment-based estimator
/// (Eq. 8). `result[i]` is `None` for items never selected in the data.
pub fn assignment_difficulty_all(
    dataset: &Dataset,
    assignments: &SkillAssignments,
) -> Result<Vec<Option<f64>>> {
    if assignments.per_user.len() != dataset.n_users() {
        return Err(CoreError::LengthMismatch {
            context: "assignments vs sequences",
            left: assignments.per_user.len(),
            right: dataset.n_users(),
        });
    }
    let mut sum = vec![0.0f64; dataset.n_items()];
    let mut count = vec![0u32; dataset.n_items()];
    for (seq, levels) in dataset.sequences().iter().zip(&assignments.per_user) {
        if seq.len() != levels.len() {
            return Err(CoreError::LengthMismatch {
                context: "assignment vs sequence length",
                left: levels.len(),
                right: seq.len(),
            });
        }
        for (action, &s) in seq.actions().iter().zip(levels) {
            sum[action.item as usize] += s as f64;
            count[action.item as usize] += 1;
        }
    }
    Ok(sum
        .into_iter()
        .zip(count)
        .map(|(s, c)| if c > 0 { Some(s / c as f64) } else { None })
        .collect())
}

/// Difficulty of one item via the assignment-based estimator (Eq. 8).
///
/// Errors with [`CoreError::ItemNeverSelected`] for unseen items — the
/// drawback §V-B motivates the generation-based estimator with.
pub fn assignment_difficulty(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    item: ItemId,
) -> Result<f64> {
    let all = assignment_difficulty_all(dataset, assignments)?;
    all.get(item as usize)
        .copied()
        .flatten()
        .ok_or(CoreError::ItemNeverSelected { item })
}

/// The empirical skill prior: the fraction of actions assigned each level.
pub fn empirical_prior(assignments: &SkillAssignments, n_levels: usize) -> Result<Vec<f64>> {
    let hist = assignments.level_histogram(n_levels);
    let total: usize = hist.iter().sum();
    if total == 0 {
        return Err(CoreError::EmptyDataset);
    }
    Ok(hist.into_iter().map(|c| c as f64 / total as f64).collect())
}

/// Difficulty of an arbitrary feature tuple via the generation-based
/// estimator (Eq. 9): `d_i = Σ_s s · P(s | i)`.
///
/// `prior` must have `model.n_levels()` entries summing to ~1; use
/// [`empirical_prior`] or a uniform vector. Result lies in `[1, S]`.
pub fn generation_difficulty_with_prior(
    model: &SkillModel,
    features: &[FeatureValue],
    prior: &[f64],
) -> Result<f64> {
    let posterior = model.skill_posterior(features, prior)?;
    Ok(posterior
        .iter()
        .enumerate()
        .map(|(idx, &p)| (idx + 1) as f64 * p)
        .sum())
}

/// Generation-based difficulty for one feature tuple under the chosen prior
/// policy. The `assignments` are only consulted for the empirical prior.
pub fn generation_difficulty(
    model: &SkillModel,
    features: &[FeatureValue],
    prior: SkillPrior,
    assignments: Option<&SkillAssignments>,
) -> Result<f64> {
    let s = model.n_levels();
    let prior_vec = match prior {
        SkillPrior::Uniform => vec![1.0 / s as f64; s],
        SkillPrior::Empirical => {
            let assignments = assignments.ok_or(CoreError::EmptyDataset)?;
            empirical_prior(assignments, s)?
        }
    };
    generation_difficulty_with_prior(model, features, &prior_vec)
}

/// Generation-based difficulty of every item in a dataset.
///
/// Builds a shared [`EmissionTable`] once: the posterior `P(s | i)` of
/// Eq. 10 is exactly one table row combined with the prior, so the per-item
/// cost drops to a row read plus a normalization.
pub fn generation_difficulty_all(
    model: &SkillModel,
    dataset: &Dataset,
    prior: SkillPrior,
    assignments: Option<&SkillAssignments>,
) -> Result<Vec<f64>> {
    let table = EmissionTable::build(model, dataset);
    generation_difficulty_all_with_table(&table, prior, assignments)
}

/// Generation-based difficulty of every table item from an existing
/// [`EmissionTable`] — e.g. the one the final training iteration built.
pub fn generation_difficulty_all_with_table(
    table: &EmissionTable,
    prior: SkillPrior,
    assignments: Option<&SkillAssignments>,
) -> Result<Vec<f64>> {
    let s = table.n_levels();
    let prior_vec = match prior {
        SkillPrior::Uniform => vec![1.0 / s as f64; s],
        SkillPrior::Empirical => {
            let assignments = assignments.ok_or(CoreError::EmptyDataset)?;
            empirical_prior(assignments, s)?
        }
    };
    (0..table.n_items())
        .map(|item| table.expected_level(item as ItemId, &prior_vec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::feature::{FeatureKind, FeatureSchema};
    use crate::types::{Action, ActionSequence};

    fn two_level_setup() -> (Dataset, SkillAssignments, SkillModel) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)], // item 0: "easy"
            vec![FeatureValue::Categorical(1)], // item 1: "hard"
            vec![FeatureValue::Categorical(1)], // item 2: never selected
        ];
        // user 0: item0@s1, item0@s1, item1@s2; user 1: item1@s2.
        let s0 = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 0),
                Action::new(2, 0, 1),
            ],
        )
        .unwrap();
        let s1 = ActionSequence::new(1, vec![Action::new(0, 1, 1)]).unwrap();
        let ds = Dataset::new(schema.clone(), items, vec![s0, s1]).unwrap();
        let assignments = SkillAssignments {
            per_user: vec![vec![1, 1, 2], vec![2]],
        };
        let cells = vec![
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.9, 0.1]).unwrap(),
            )],
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.2, 0.8]).unwrap(),
            )],
        ];
        let model = SkillModel::new(schema, 2, cells).unwrap();
        (ds, assignments, model)
    }

    #[test]
    fn assignment_difficulty_is_mean_skill() {
        let (ds, a, _) = two_level_setup();
        // Item 0 selected twice at level 1 → 1.0; item 1 at levels 2 and 2 → 2.0.
        assert!((assignment_difficulty(&ds, &a, 0).unwrap() - 1.0).abs() < 1e-12);
        assert!((assignment_difficulty(&ds, &a, 1).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn assignment_difficulty_mixed_levels_averages() {
        let (ds, _, _) = two_level_setup();
        let a = SkillAssignments {
            per_user: vec![vec![1, 1, 1], vec![2]],
        };
        // Item 1 selected at levels 1 and 2 → 1.5.
        assert!((assignment_difficulty(&ds, &a, 1).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unseen_item_errors_for_assignment_estimator() {
        let (ds, a, _) = two_level_setup();
        assert!(matches!(
            assignment_difficulty(&ds, &a, 2),
            Err(CoreError::ItemNeverSelected { item: 2 })
        ));
        let all = assignment_difficulty_all(&ds, &a).unwrap();
        assert!(all[2].is_none());
    }

    #[test]
    fn generation_estimator_handles_unseen_items() {
        let (ds, a, model) = two_level_setup();
        let d = generation_difficulty(&model, ds.item_features(2), SkillPrior::Empirical, Some(&a))
            .unwrap();
        assert!((1.0..=2.0).contains(&d));
        // A "hard" feature tuple should land above the midpoint.
        assert!(d > 1.5);
    }

    #[test]
    fn generation_difficulty_bounds() {
        let (ds, _, model) = two_level_setup();
        for item in 0..ds.n_items() as u32 {
            let d =
                generation_difficulty(&model, ds.item_features(item), SkillPrior::Uniform, None)
                    .unwrap();
            assert!((1.0..=2.0).contains(&d), "difficulty {d} out of [1,S]");
        }
    }

    #[test]
    fn empirical_prior_reflects_histogram() {
        let (_, a, _) = two_level_setup();
        let prior = empirical_prior(&a, 2).unwrap();
        // 2 actions at level 1, 2 at level 2.
        assert!((prior[0] - 0.5).abs() < 1e-12);
        assert!((prior[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_prior_shifts_difficulty() {
        let (ds, _, model) = two_level_setup();
        // Heavily skewed prior toward level 1 should pull difficulty down.
        let d_flat =
            generation_difficulty_with_prior(&model, ds.item_features(1), &[0.5, 0.5]).unwrap();
        let d_skew =
            generation_difficulty_with_prior(&model, ds.item_features(1), &[0.95, 0.05]).unwrap();
        assert!(d_skew < d_flat);
    }

    #[test]
    fn empirical_without_assignments_errors() {
        let (ds, _, model) = two_level_setup();
        assert!(
            generation_difficulty(&model, ds.item_features(0), SkillPrior::Empirical, None)
                .is_err()
        );
    }

    #[test]
    fn all_items_at_once_matches_single_calls() {
        let (ds, a, model) = two_level_setup();
        let all = generation_difficulty_all(&model, &ds, SkillPrior::Empirical, Some(&a)).unwrap();
        for (i, &d) in all.iter().enumerate() {
            let single = generation_difficulty(
                &model,
                ds.item_features(i as u32),
                SkillPrior::Empirical,
                Some(&a),
            )
            .unwrap();
            assert!((d - single).abs() < 1e-12);
        }
    }

    #[test]
    fn table_backed_difficulty_matches_direct() {
        let (ds, a, model) = two_level_setup();
        let table = EmissionTable::build(&model, &ds);
        for (prior, assignments) in [
            (SkillPrior::Uniform, None),
            (SkillPrior::Empirical, Some(&a)),
        ] {
            let tabled = generation_difficulty_all_with_table(&table, prior, assignments).unwrap();
            for (i, &d) in tabled.iter().enumerate() {
                let direct =
                    generation_difficulty(&model, ds.item_features(i as u32), prior, assignments)
                        .unwrap();
                assert_eq!(d, direct);
            }
        }
    }
}
