//! Epoch-published read-mostly state: the swap half of the serving
//! layer's read/refit split.
//!
//! A live service reads the [`EmissionTable`](crate::emission::EmissionTable)
//! on every request but rewrites it only at refits. Guarding the table
//! itself with a lock would make every prediction wait out every refit;
//! an [`EpochCell`] instead publishes *immutable snapshots*: readers
//! clone an `Arc` pointer under a briefly-held read lock (no contention
//! with other readers, nanoseconds of critical section), while a refit
//! builds its replacement value completely off to the side and swaps the
//! pointer in one write — readers holding the old epoch keep a fully
//! consistent view until they drop it.
//!
//! The monotonically increasing epoch number lets callers tag answers
//! with the model state that produced them and detect staleness across
//! requests.

use std::sync::{Arc, PoisonError, RwLock};

/// A versioned, atomically swappable snapshot holder.
///
/// Readers call [`EpochCell::load`] and work off the returned `Arc` for
/// as long as they like; writers call [`EpochCell::publish`] with a
/// fully built replacement. Neither ever blocks on the other for more
/// than the pointer swap itself.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// `(epoch, snapshot)` — swapped as a unit so a reader can never
    /// observe a new epoch number with an old snapshot or vice versa.
    inner: RwLock<(u64, Arc<T>)>,
}

impl<T> EpochCell<T> {
    /// Wraps the initial snapshot as epoch 0.
    pub fn new(value: T) -> Self {
        Self {
            inner: RwLock::new((0, Arc::new(value))),
        }
    }

    /// The current `(epoch, snapshot)` pair. The returned `Arc` stays
    /// valid (and immutable) however many publishes happen after.
    ///
    /// Lock poisoning is recovered from rather than propagated: the cell
    /// holds only an `Arc` swapped in one assignment, so a panicking
    /// peer can never leave a half-updated snapshot behind.
    pub fn load(&self) -> (u64, Arc<T>) {
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let out = (guard.0, Arc::clone(&guard.1));
        drop(guard);
        #[cfg(feature = "deterministic-sync")]
        crate::sync::explore::on_epoch_load(out.0);
        out
    }

    /// The current epoch number without touching the snapshot.
    pub fn epoch(&self) -> u64 {
        self.inner.read().unwrap_or_else(PoisonError::into_inner).0
    }

    /// Atomically replaces the snapshot, bumping the epoch. Returns the
    /// new epoch number. Existing readers keep their old `Arc`.
    pub fn publish(&self, value: T) -> u64 {
        // Under an active deterministic exploration this is a schedule
        // point, checked against the no-shard-guard-across-publish rule.
        #[cfg(feature = "deterministic-sync")]
        crate::sync::explore::on_publish_point();
        let mut guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        guard.0 += 1;
        guard.1 = Arc::new(value);
        let epoch = guard.0;
        drop(guard);
        #[cfg(feature = "deterministic-sync")]
        crate::sync::explore::on_published(epoch);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_publish_round_trip() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let (e0, v0) = cell.load();
        assert_eq!(e0, 0);
        assert_eq!(*v0, vec![1, 2, 3]);

        assert_eq!(cell.publish(vec![4]), 1);
        assert_eq!(cell.epoch(), 1);
        // The old snapshot is unaffected by the publish.
        assert_eq!(*v0, vec![1, 2, 3]);
        let (e1, v1) = cell.load();
        assert_eq!(e1, 1);
        assert_eq!(*v1, vec![4]);
    }

    #[test]
    fn concurrent_readers_see_consistent_pairs() {
        let cell = Arc::new(EpochCell::new(0u64));
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || {
                        for _ in 0..1_000 {
                            let (epoch, value) = cell.load();
                            // The pair is swapped as a unit: epoch and
                            // payload always agree.
                            assert_eq!(epoch, *value);
                        }
                    })
                })
                .collect();
            for epoch in 1..=100u64 {
                cell.publish(epoch);
            }
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(cell.epoch(), 100);
    }
}
