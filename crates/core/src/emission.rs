//! Shared emission table: `log P(i | s)` for every item × skill level.
//!
//! The assignment DP, the EM posteriors, generation difficulty, prediction
//! and recommendation all evaluate the same emission score
//! `log P(i | s) = Σ_f log P_f(i_f | θ_f(s))` (Eq. 2). That score depends
//! only on the *item*, not on where the action sits in a sequence — and a
//! dataset has far more actions than distinct items (`Σ_u |A_u| ≫ n_items`).
//! Building the full `n_items × S` matrix once per training iteration and
//! reading rows during the DP replaces `O(Σ_u |A_u| · F · S)` distribution
//! evaluations with `O(n_items · F · S)` plus cheap memory reads.
//!
//! The table is a flat row-major `Vec<f64>`: `data[item * S + (s - 1)]`.
//! One row is the emission vector of one item at all levels, contiguous in
//! memory, so the DP inner loop walks a cache line instead of re-deriving
//! log-PMFs. Values are produced by the exact same
//! [`SkillModel::item_log_likelihood`] calls the direct paths make, so
//! table-backed and direct computations agree *bitwise*, not approximately.

use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{skill_level_from_index, Dataset, ItemId, SkillLevel};

/// Minimum items per stolen work unit in [`EmissionTable::build_parallel`].
const PARALLEL_CHUNK: usize = 64;

/// Precomputed `n_items × S` matrix of emission log-likelihoods.
///
/// Build it once per training iteration (the table is a pure function of
/// the current model parameters and the item feature matrix) and share it
/// across every sequence. After an online or forgetting-path model update
/// that only touches some items, refresh just those rows with
/// [`EmissionTable::refresh_items`] instead of rebuilding.
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionTable {
    n_items: usize,
    n_levels: usize,
    /// Row-major scores: `data[item * n_levels + (s - 1)]`.
    data: Vec<f64>,
}

impl EmissionTable {
    /// Builds the full table sequentially.
    ///
    /// Cost: `n_items · S` calls to [`SkillModel::item_log_likelihood`] —
    /// the same work the direct assignment path spends on a *single* pass
    /// over `n_items` actions, amortized here over the whole dataset.
    pub fn build(model: &SkillModel, dataset: &Dataset) -> Self {
        let n_items = dataset.n_items();
        let n_levels = model.n_levels();
        let mut data = Vec::with_capacity(n_items * n_levels);
        for features in dataset.items() {
            for s0 in 0..n_levels {
                data.push(model.item_log_likelihood(features, skill_level_from_index(s0)));
            }
        }
        EmissionTable {
            n_items,
            n_levels,
            data,
        }
    }

    /// Builds the table with `threads` workers stealing item chunks.
    ///
    /// Mirrors the work-stealing pattern of
    /// [`assign_all_parallel`](crate::parallel::assign_all_parallel): a
    /// shared atomic cursor hands out chunks of `PARALLEL_CHUNK` items so
    /// uneven feature counts cannot stall a static partition. Falls back to
    /// the sequential build when one thread (or one chunk) suffices.
    pub fn build_parallel(model: &SkillModel, dataset: &Dataset, threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(CoreError::InvalidParallelism { threads: 0 });
        }
        let n_items = dataset.n_items();
        let n_levels = model.n_levels();
        let n_chunks = n_items.div_ceil(PARALLEL_CHUNK).max(1);
        if threads <= 1 || n_chunks <= 1 {
            return Ok(Self::build(model, dataset));
        }

        let n_workers = threads.min(n_chunks);
        let next = std::sync::atomic::AtomicUsize::new(0);
        type ChunkRows = Vec<(usize, Vec<f64>)>;
        let results: Vec<Result<ChunkRows>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..n_workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || -> Result<ChunkRows> {
                            let mut out: ChunkRows = Vec::new();
                            loop {
                                let chunk = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if chunk >= n_chunks {
                                    break;
                                }
                                let start = chunk * PARALLEL_CHUNK;
                                let end = (start + PARALLEL_CHUNK).min(n_items);
                                let mut rows = Vec::with_capacity((end - start) * n_levels);
                                for features in &dataset.items()[start..end] {
                                    for s0 in 0..n_levels {
                                        rows.push(model.item_log_likelihood(
                                            features,
                                            skill_level_from_index(s0),
                                        ));
                                    }
                                }
                                out.push((start, rows));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(CoreError::WorkerPanicked {
                        step: "emission table",
                    }))
                })
                .collect()
        });

        let mut data = vec![0.0f64; n_items * n_levels];
        for worker in results {
            for (start, rows) in worker? {
                let offset = start * n_levels;
                data[offset..offset + rows.len()].copy_from_slice(&rows);
            }
        }
        Ok(EmissionTable {
            n_items,
            n_levels,
            data,
        })
    }

    /// Number of items (table rows).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of skill levels `S` (table columns).
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// The emission vector of one item at all levels (`row[s - 1]`).
    ///
    /// # Panics
    /// Panics if `item` is out of range; use [`EmissionTable::checked_row`]
    /// when the item id is not already dataset-validated.
    pub fn row(&self, item: ItemId) -> &[f64] {
        let i = item as usize;
        &self.data[i * self.n_levels..(i + 1) * self.n_levels]
    }

    /// Bounds-checked variant of [`EmissionTable::row`].
    pub fn checked_row(&self, item: ItemId) -> Option<&[f64]> {
        let i = item as usize;
        if i >= self.n_items {
            return None;
        }
        Some(&self.data[i * self.n_levels..(i + 1) * self.n_levels])
    }

    /// `log P(item | s)`, mirroring [`SkillModel::item_log_likelihood`]:
    /// out-of-range items or levels score `-inf` (a forbidden DP path)
    /// rather than erroring.
    pub fn log_likelihood(&self, item: ItemId, s: SkillLevel) -> f64 {
        let level = s as usize;
        if level == 0 || level > self.n_levels {
            return f64::NEG_INFINITY;
        }
        match self.checked_row(item) {
            Some(row) => row[level - 1],
            None => f64::NEG_INFINITY,
        }
    }

    /// Incremental invalidation: recomputes only the rows of `items`.
    ///
    /// Online and forgetting paths that re-fit a handful of item-touching
    /// distributions can keep the rest of the table warm. The model and
    /// dataset must have the shapes the table was built with; a stale item
    /// id is reported, not silently skipped.
    pub fn refresh_items(
        &mut self,
        model: &SkillModel,
        dataset: &Dataset,
        items: &[ItemId],
    ) -> Result<()> {
        if model.n_levels() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "emission table levels vs model levels",
                left: self.n_levels,
                right: model.n_levels(),
            });
        }
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "emission table items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        let n_levels = self.n_levels;
        for &item in items {
            let i = item as usize;
            if i >= self.n_items {
                return Err(CoreError::FeatureIndexOutOfBounds {
                    index: i,
                    len: self.n_items,
                });
            }
            let features = dataset.item_features(item);
            let row = &mut self.data[i * n_levels..(i + 1) * n_levels];
            for (s0, cell) in row.iter_mut().enumerate() {
                *cell = model.item_log_likelihood(features, skill_level_from_index(s0));
            }
        }
        Ok(())
    }

    /// Incremental invalidation by *level*: recomputes column `s` of every
    /// item for the levels flagged in `levels` (zero-based, one flag per
    /// level).
    ///
    /// The incremental trainer refits only the levels whose sufficient
    /// statistics changed and reuses the previous iteration's
    /// distributions (bitwise) everywhere else, so the table columns of
    /// untouched levels are still exact — refreshing just the refit
    /// columns costs `n_items · n_refit · F` evaluations instead of a
    /// full `n_items · S · F` rebuild.
    pub fn refresh_levels(
        &mut self,
        model: &SkillModel,
        dataset: &Dataset,
        levels: &[bool],
    ) -> Result<()> {
        if model.n_levels() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "emission table levels vs model levels",
                left: self.n_levels,
                right: model.n_levels(),
            });
        }
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "emission table items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        if levels.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "refresh flags vs levels",
                left: levels.len(),
                right: self.n_levels,
            });
        }
        if !levels.iter().any(|&d| d) {
            return Ok(());
        }
        let n_levels = self.n_levels;
        for (row, features) in self.data.chunks_mut(n_levels).zip(dataset.items()) {
            for ((s0, cell), &dirty) in row.iter_mut().enumerate().zip(levels) {
                if !dirty {
                    continue;
                }
                *cell = model.item_log_likelihood(features, skill_level_from_index(s0));
            }
        }
        Ok(())
    }

    /// Scans every cell for poison values — NaN or `+inf` — and reports
    /// the first offender's coordinates. `-inf` is a *legal* score (a
    /// forbidden DP path under Eq. 2) and passes.
    ///
    /// The invariant layer ([`crate::invariants::InvariantCtx`]) calls
    /// this after every build and refresh, so corrupted parameters or a
    /// poisoned dataset are caught before any DP reads the table.
    pub fn verify_finite(&self) -> Result<()> {
        let n_levels = self.n_levels;
        for (idx, &v) in self.data.iter().enumerate() {
            if v.is_nan() || (v.is_infinite() && v.is_sign_positive()) {
                return Err(CoreError::InvariantViolation {
                    check: "emission table",
                    detail: format!(
                        "poison value {v} at item {}, level {}",
                        idx / n_levels,
                        idx % n_levels + 1
                    ),
                });
            }
        }
        Ok(())
    }

    /// Posterior `P(s | item)` under a prior `P(s)` (Eq. 10), read from the
    /// table row. Replicates [`SkillModel::skill_posterior`] step for step
    /// (same log-space max trick, same impossible-item fallback to the
    /// normalized prior) so both paths produce identical distributions.
    pub fn posterior(&self, item: ItemId, prior: &[f64]) -> Result<Vec<f64>> {
        if prior.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "skill prior vs levels",
                left: prior.len(),
                right: self.n_levels,
            });
        }
        let row = self
            .checked_row(item)
            .ok_or(CoreError::FeatureIndexOutOfBounds {
                index: item as usize,
                len: self.n_items,
            })?;
        let mut log_post: Vec<f64> = row
            .iter()
            .zip(prior)
            .map(|(&ll, &p)| {
                if p > 0.0 {
                    ll + p.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // The item is impossible under every level; fall back to the
            // prior itself so downstream code still gets a distribution.
            let total: f64 = prior.iter().sum();
            if total <= 0.0 {
                return Err(CoreError::InvalidProbability {
                    context: "skill prior sum",
                    value: total,
                });
            }
            return Ok(prior.iter().map(|&p| p / total).collect());
        }
        let mut total = 0.0;
        for lp in log_post.iter_mut() {
            *lp = (*lp - max).exp();
            total += *lp;
        }
        for lp in log_post.iter_mut() {
            *lp /= total;
        }
        Ok(log_post)
    }

    /// Expected skill level `Σ_s s · P(s | item)` — the generation-based
    /// difficulty of Eq. 11, evaluated from one table row.
    pub fn expected_level(&self, item: ItemId, prior: &[f64]) -> Result<f64> {
        let post = self.posterior(item, prior)?;
        Ok(post
            .iter()
            .enumerate()
            .map(|(idx, &p)| (idx + 1) as f64 * p)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution, Poisson};
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::{Action, ActionSequence};

    #[test]
    fn refresh_levels_recomputes_only_flagged_columns() {
        let (model_a, ds) = mixed_setup();
        // A second model differing only in the level-2 row.
        let schema = ds.schema().clone();
        let cells = vec![
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.9, 0.1]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
            ],
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.3, 0.7]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(4.0).unwrap()),
            ],
        ];
        let model_b = SkillModel::new(schema, 2, cells).unwrap();

        let mut table = EmissionTable::build(&model_a, &ds);
        // No flags set: a no-op.
        table
            .refresh_levels(&model_b, &ds, &[false, false])
            .unwrap();
        let fresh_a = EmissionTable::build(&model_a, &ds);
        for item in 0..ds.n_items() as ItemId {
            assert_eq!(table.row(item), fresh_a.row(item));
        }
        // Refresh only level 2: column 1 must match a fresh build of the
        // new model bit for bit, column 0 must stay the old model's.
        table.refresh_levels(&model_b, &ds, &[false, true]).unwrap();
        let fresh_b = EmissionTable::build(&model_b, &ds);
        for item in 0..ds.n_items() as ItemId {
            assert_eq!(table.row(item)[0].to_bits(), fresh_a.row(item)[0].to_bits());
            assert_eq!(table.row(item)[1].to_bits(), fresh_b.row(item)[1].to_bits());
        }
        // Wrong flag count is an error, not a silent zip.
        assert!(table.refresh_levels(&model_b, &ds, &[true]).is_err());
    }

    fn mixed_setup() -> (SkillModel, Dataset) {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 2 },
            FeatureKind::Count,
        ])
        .unwrap();
        let cells = vec![
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.9, 0.1]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
            ],
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.1, 0.9]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(6.0).unwrap()),
            ],
        ];
        let model = SkillModel::new(schema.clone(), 2, cells).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0), FeatureValue::Count(2)],
            vec![FeatureValue::Categorical(1), FeatureValue::Count(7)],
            vec![FeatureValue::Categorical(0), FeatureValue::Count(5)],
        ];
        let seq = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 2),
                Action::new(2, 0, 1),
            ],
        )
        .unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        (model, ds)
    }

    #[test]
    fn table_matches_direct_evaluation_bitwise() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        assert_eq!(table.n_items(), 3);
        assert_eq!(table.n_levels(), 2);
        for item in 0..3u32 {
            let features = ds.item_features(item);
            for s in 1..=2u8 {
                let direct = model.item_log_likelihood(features, s);
                assert_eq!(table.log_likelihood(item, s), direct);
                assert_eq!(table.row(item)[s as usize - 1], direct);
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (model, ds) = mixed_setup();
        let seq_table = EmissionTable::build(&model, &ds);
        // Few items → falls back to sequential, still exact.
        let par_table = EmissionTable::build_parallel(&model, &ds, 4).unwrap();
        assert_eq!(seq_table, par_table);
        assert!(EmissionTable::build_parallel(&model, &ds, 0).is_err());
    }

    #[test]
    fn parallel_build_matches_on_many_items() {
        // More items than one chunk so real workers engage.
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 4 }]).unwrap();
        let cells = vec![
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.4, 0.3, 0.2, 0.1]).unwrap(),
            )],
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
            )],
        ];
        let model = SkillModel::new(schema.clone(), 2, cells).unwrap();
        let n_items = 3 * super::PARALLEL_CHUNK + 7;
        let items: Vec<Vec<FeatureValue>> = (0..n_items)
            .map(|i| vec![FeatureValue::Categorical((i % 4) as u32)])
            .collect();
        let actions: Vec<Action> = (0..n_items)
            .map(|t| Action::new(t as i64, 0, t as u32))
            .collect();
        let seq = ActionSequence::new(0, actions).unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        let seq_table = EmissionTable::build(&model, &ds);
        let par_table = EmissionTable::build_parallel(&model, &ds, 3).unwrap();
        assert_eq!(seq_table, par_table);
    }

    #[test]
    fn out_of_range_scores_neg_inf_or_none() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        assert!(table.checked_row(99).is_none());
        assert_eq!(table.log_likelihood(99, 1), f64::NEG_INFINITY);
        assert_eq!(table.log_likelihood(0, 0), f64::NEG_INFINITY);
        assert_eq!(table.log_likelihood(0, 3), f64::NEG_INFINITY);
    }

    #[test]
    fn posterior_matches_model_posterior() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        let prior = [0.3, 0.7];
        for item in 0..3u32 {
            let direct = model
                .skill_posterior(ds.item_features(item), &prior)
                .unwrap();
            let tabled = table.posterior(item, &prior).unwrap();
            assert_eq!(direct, tabled);
        }
        assert!(table.posterior(0, &[1.0]).is_err());
        assert!(table.posterior(42, &prior).is_err());
    }

    #[test]
    fn expected_level_is_prior_weighted_mean() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        let prior = [0.5, 0.5];
        let e = table.expected_level(1, &prior).unwrap();
        let post = table.posterior(1, &prior).unwrap();
        assert!((e - (post[0] + 2.0 * post[1])).abs() < 1e-15);
        assert!((1.0..=2.0).contains(&e));
    }

    #[test]
    fn verify_finite_accepts_neg_inf_rejects_nan_and_pos_inf() {
        let (model, ds) = mixed_setup();
        let mut table = EmissionTable::build(&model, &ds);
        assert!(table.verify_finite().is_ok());
        // -inf is a legal "forbidden path" score.
        table.data[3] = f64::NEG_INFINITY;
        assert!(table.verify_finite().is_ok());
        // NaN and +inf are poison; the error names the coordinates.
        table.data[3] = f64::NAN;
        let err = table.verify_finite().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("item 1") && msg.contains("level 2"), "{msg}");
        table.data[3] = f64::INFINITY;
        assert!(table.verify_finite().is_err());
    }

    #[test]
    fn refresh_items_updates_only_requested_rows() {
        let (model, ds) = mixed_setup();
        let mut table = EmissionTable::build(&model, &ds);
        // Perturb two rows, then refresh one of them.
        let s = table.n_levels();
        table.data[0] = 123.0;
        table.data[s] = 456.0; // item 1, level 1
        table.refresh_items(&model, &ds, &[0]).unwrap();
        let fresh = EmissionTable::build(&model, &ds);
        assert_eq!(table.row(0), fresh.row(0));
        assert_eq!(table.row(1)[0], 456.0);
        table.refresh_items(&model, &ds, &[1]).unwrap();
        assert_eq!(table, fresh);
        assert!(table.refresh_items(&model, &ds, &[9]).is_err());
    }
}
