//! Shared emission table: `log P(i | s)` for every item × skill level.
//!
//! The assignment DP, the EM posteriors, generation difficulty, prediction
//! and recommendation all evaluate the same emission score
//! `log P(i | s) = Σ_f log P_f(i_f | θ_f(s))` (Eq. 2). That score depends
//! only on the *item*, not on where the action sits in a sequence — and a
//! dataset has far more actions than distinct items (`Σ_u |A_u| ≫ n_items`).
//! Building the full `n_items × S` matrix once per training iteration and
//! reading rows during the DP replaces `O(Σ_u |A_u| · F · S)` distribution
//! evaluations with `O(n_items · F · S)` plus cheap memory reads.
//!
//! The table is a flat row-major `Vec<f64>`: `data[item * S + (s - 1)]`.
//! One row is the emission vector of one item at all levels, contiguous in
//! memory, so the DP inner loop walks a cache line instead of re-deriving
//! log-PMFs.
//!
//! ## Columnar fill
//!
//! The fill itself is *columnar*: item feature values are gathered once
//! per feature into flat columns (`FeatureColumn`), hoisting the enum
//! dispatch and the per-item transcendentals (`ln x`, `ln k!`, integer →
//! float widening) out of the `S × n_items` loop, and each
//! (feature, level) pair is then evaluated by one batch kernel
//! (`log_prob_batch` / `log_pmf_batch` / `log_pdf_batch`) over a
//! contiguous unit-stride run of cells. Every cell accumulates its
//! feature contributions in schema order starting from `0.0` — the exact
//! operation order of [`SkillModel::item_log_likelihood`]'s feature sum —
//! so the table agrees with the direct path *bitwise*, not approximately
//! (pinned by `tests/properties_emission.rs`). The original cell-by-cell
//! fill is kept as [`EmissionTable::build_scalar`], the reference baseline
//! for tests and `bench_emission`.
//!
//! For memory-bound deployments, [`CompactEmissionTable`] stores the same
//! scores rounded once to `f32` (still accumulated in f64), halving the
//! resident table behind the `ParallelConfig::with_emission_f32` flag.

use crate::dist::special::ln_factorial;
use crate::dist::{score_kind_mismatch, FeatureDistribution};
use crate::error::{CoreError, Result};
use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
use crate::model::SkillModel;
use crate::types::{skill_level_from_index, Dataset, ItemId, SkillLevel};

/// Minimum items per stolen work unit in [`EmissionTable::build_parallel`].
const PARALLEL_CHUNK: usize = 64;

/// Item-tile width of the cache-blocked sequential fill
/// ([`EmissionTable::build`] and [`EmissionTable::refresh_levels`]).
///
/// Per tile the fill touches the gathered columns (≈ `3 × 8` bytes per
/// item per feature), the level-major scratch (`tile × S` f64), and the
/// output window (`tile × S` f64) — ~200 kB at 2048 items, S = 5,
/// F = 3, comfortably inside a per-core L2 — where the whole-axis fill
/// streams `n_items × S` buffers (2 MB at 50 k items) through every
/// kernel pass. Tile size changes no per-cell operation order, so every
/// choice is bitwise identical; 2048 is flat-optimal on this host
/// (within noise from 1024 to 4096).
const ITEM_TILE: usize = 2048;

/// One gathered feature column: the values of a single feature for a run
/// of items, with the per-item transforms the scalar path recomputes for
/// every level (integer → float widening, `ln k!`, `ln x`) hoisted out so
/// they are paid once across all `S` level kernels.
enum FeatureColumn {
    /// Category codes for [`crate::dist::Categorical::log_prob_batch`].
    Categorical(Vec<u32>),
    /// Counts widened to `f64` plus `ln k!` for
    /// [`crate::dist::Poisson::log_pmf_batch`].
    Count {
        /// `k` as `f64`, one slot per item.
        ks: Vec<f64>,
        /// `ln k!`, one slot per item.
        ln_facts: Vec<f64>,
    },
    /// Positive reals plus `ln x` for the gamma / log-normal kernels.
    /// Items failing the scalar density guard (`x ≤ 0` or non-finite)
    /// carry the placeholder pair `(1.0, 0.0)` and are flagged in
    /// `guard`, so the kernels never see invalid inputs and
    /// [`apply_guard`] rewrites those cells to `-inf` afterwards —
    /// exactly the scalar guard result.
    Real {
        /// Sample values (placeholder `1.0` for guarded slots).
        xs: Vec<f64>,
        /// `ln x` (placeholder `0.0` for guarded slots).
        ln_xs: Vec<f64>,
        /// Which slots failed the density guard.
        guard: Vec<bool>,
        /// Fast path: skip the guard walk when nothing is flagged.
        any_guarded: bool,
    },
}

impl FeatureColumn {
    fn with_capacity(kind: FeatureKind, capacity: usize) -> Self {
        match kind {
            FeatureKind::Categorical { .. } => {
                FeatureColumn::Categorical(Vec::with_capacity(capacity))
            }
            FeatureKind::Count => FeatureColumn::Count {
                ks: Vec::with_capacity(capacity),
                ln_facts: Vec::with_capacity(capacity),
            },
            FeatureKind::Positive { .. } => FeatureColumn::Real {
                xs: Vec::with_capacity(capacity),
                ln_xs: Vec::with_capacity(capacity),
                guard: Vec::with_capacity(capacity),
                any_guarded: false,
            },
        }
    }

    /// Appends one value; `false` signals a value whose kind does not
    /// match the column (impossible for schema-validated datasets — the
    /// slot is kept aligned with a neutral placeholder and the caller
    /// poisons the whole item row).
    fn push(&mut self, value: &FeatureValue) -> bool {
        match (self, value) {
            (FeatureColumn::Categorical(cats), FeatureValue::Categorical(c)) => {
                cats.push(*c);
                true
            }
            (FeatureColumn::Count { ks, ln_facts }, FeatureValue::Count(k)) => {
                ks.push(*k as f64);
                ln_facts.push(ln_factorial(*k));
                true
            }
            (
                FeatureColumn::Real {
                    xs,
                    ln_xs,
                    guard,
                    any_guarded,
                },
                FeatureValue::Real(x),
            ) => {
                if *x > 0.0 && x.is_finite() {
                    xs.push(*x);
                    ln_xs.push(x.ln());
                    guard.push(false);
                } else {
                    xs.push(1.0);
                    ln_xs.push(0.0);
                    guard.push(true);
                    *any_guarded = true;
                }
                true
            }
            (column, _) => {
                column.push_placeholder();
                false
            }
        }
    }

    /// Appends a neutral slot so column lengths stay aligned after a
    /// gather-time kind mismatch.
    fn push_placeholder(&mut self) {
        match self {
            FeatureColumn::Categorical(cats) => cats.push(u32::MAX),
            FeatureColumn::Count { ks, ln_facts } => {
                ks.push(0.0);
                ln_facts.push(0.0);
            }
            FeatureColumn::Real {
                xs, ln_xs, guard, ..
            } => {
                xs.push(1.0);
                ln_xs.push(0.0);
                guard.push(false);
            }
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            FeatureColumn::Categorical(_) => "categorical",
            FeatureColumn::Count { .. } => "count",
            FeatureColumn::Real { .. } => "positive real",
        }
    }
}

/// Gathered columns for a run of items, plus the mask of items whose
/// value tuple failed schema dispatch entirely (dead code for
/// [`Dataset`]-validated items, which are checked at construction): those
/// rows are forced to `-inf` at every level, the release contract of
/// [`score_kind_mismatch`].
struct GatheredColumns {
    columns: Vec<FeatureColumn>,
    hard_poison: Vec<bool>,
    any_hard: bool,
    n_rows: usize,
}

/// Gathers feature columns for `n_rows` item feature tuples.
fn gather_columns<'a>(
    schema: &FeatureSchema,
    items: impl Iterator<Item = &'a [FeatureValue]>,
    n_rows: usize,
) -> GatheredColumns {
    let mut columns: Vec<FeatureColumn> = schema
        .kinds()
        .iter()
        .map(|&kind| FeatureColumn::with_capacity(kind, n_rows))
        .collect();
    let mut hard_poison = vec![false; n_rows];
    let mut any_hard = false;
    for (features, bad) in items.zip(hard_poison.iter_mut()) {
        for (column, value) in columns.iter_mut().zip(features) {
            if !column.push(value) {
                let _ = score_kind_mismatch(column.kind_name(), value.name());
                *bad = true;
                any_hard = true;
            }
        }
    }
    GatheredColumns {
        columns,
        hard_poison,
        any_hard,
        n_rows,
    }
}

/// Applies one level's distribution to one gathered column, accumulating
/// into a level-major slice of `n_rows` cells.
fn evaluate_column(dist: &FeatureDistribution, column: &FeatureColumn, out: &mut [f64]) {
    match (dist, column) {
        (FeatureDistribution::Categorical(d), FeatureColumn::Categorical(cats)) => {
            d.log_prob_batch(cats, out);
        }
        (FeatureDistribution::Poisson(d), FeatureColumn::Count { ks, ln_facts }) => {
            d.log_pmf_batch(ks, ln_facts, out);
        }
        (
            FeatureDistribution::Gamma(d),
            FeatureColumn::Real {
                xs,
                ln_xs,
                guard,
                any_guarded,
            },
        ) => {
            d.log_pdf_batch(xs, ln_xs, out);
            apply_guard(out, guard, *any_guarded);
        }
        (
            FeatureDistribution::LogNormal(d),
            FeatureColumn::Real {
                ln_xs,
                guard,
                any_guarded,
                ..
            },
        ) => {
            d.log_pdf_batch(ln_xs, out);
            apply_guard(out, guard, *any_guarded);
        }
        (dist, column) => {
            // Distribution / column kind mismatch: loud under debug or
            // strict invariants, the scalar `-inf` contract in release —
            // applied to the whole column at this level.
            let poison = score_kind_mismatch(dist.kind_name(), column.kind_name());
            out.fill(poison);
        }
    }
}

/// Rewrites guard-flagged cells to `-inf`, the scalar density-guard
/// result for non-positive or non-finite samples.
fn apply_guard(out: &mut [f64], guard: &[bool], any_guarded: bool) {
    if !any_guarded {
        return;
    }
    for (cell, &bad) in out.iter_mut().zip(guard) {
        if bad {
            *cell = f64::NEG_INFINITY;
        }
    }
}

/// Fills `out` — item-major rows, `out[j·S + s₀]` for the `j`-th gathered
/// item — from the columnar kernels.
///
/// The scratch buffer is level-major (`scratch[s₀·m + j]`), so every
/// kernel call writes one contiguous unit-stride run of `m` cells; rows
/// are transposed into `out` once at the end. Cells accumulate feature
/// contributions in schema order starting from `0.0`, the exact operation
/// order of [`SkillModel::item_log_likelihood`]'s feature sum, so f64
/// results are bitwise identical to the scalar path.
fn fill_rows_columnar(
    model: &SkillModel,
    gathered: &GatheredColumns,
    scratch: &mut Vec<f64>,
    out: &mut [f64],
) {
    let m = gathered.n_rows;
    let n_levels = model.n_levels();
    debug_assert_eq!(out.len(), m * n_levels);
    if m == 0 || n_levels == 0 {
        return;
    }
    scratch.clear();
    scratch.resize(m * n_levels, 0.0);
    for (s0, level_out) in scratch.chunks_mut(m).enumerate() {
        match model.level_row(skill_level_from_index(s0)) {
            Ok(row) => {
                for (dist, column) in row.iter().zip(&gathered.columns) {
                    evaluate_column(dist, column, level_out);
                }
            }
            // Unreachable for `s₀ < S`, but the scalar path scores a
            // missing level row `-inf`, so mirror it.
            Err(_) => level_out.fill(f64::NEG_INFINITY),
        }
    }
    for ((j, row), &bad) in out
        .chunks_mut(n_levels)
        .enumerate()
        .zip(&gathered.hard_poison)
    {
        if bad {
            row.fill(f64::NEG_INFINITY);
            continue;
        }
        for (cell, &v) in row.iter_mut().zip(scratch.iter().skip(j).step_by(m)) {
            *cell = v;
        }
    }
}

/// Precomputed `n_items × S` matrix of emission log-likelihoods.
///
/// Build it once per training iteration (the table is a pure function of
/// the current model parameters and the item feature matrix) and share it
/// across every sequence. After an online or forgetting-path model update
/// that only touches some items, refresh just those rows with
/// [`EmissionTable::refresh_items`] instead of rebuilding.
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionTable {
    n_items: usize,
    n_levels: usize,
    /// Row-major scores: `data[item * n_levels + (s - 1)]`.
    data: Vec<f64>,
}

impl EmissionTable {
    /// Builds the full table sequentially with the columnar kernels,
    /// cache-blocked over item tiles.
    ///
    /// Feature values are gathered into columns per tile (hoisting enum
    /// dispatch and per-item transcendentals out of the `S`-level loop),
    /// then each (feature, level) pair runs one batch kernel over a
    /// contiguous run of cells. Blocking over `ITEM_TILE`-item tiles
    /// keeps each tile's gathered columns plus its level-major scratch
    /// (`ITEM_TILE × S` f64) resident in L2 even when the full
    /// `n_items × S` table is megabytes: every kernel streams a buffer
    /// that was just written. Each cell is a pure function of its own
    /// item's features and level row — tile boundaries change no
    /// operation order within a cell — so results are bitwise identical
    /// to [`EmissionTable::build_scalar`], the direct assignment path,
    /// and the pre-tiling whole-axis fill, for every tile size.
    pub fn build(model: &SkillModel, dataset: &Dataset) -> Self {
        let n_items = dataset.n_items();
        let n_levels = model.n_levels();
        let mut data = vec![0.0f64; n_items * n_levels];
        let mut scratch = Vec::new();
        let items = dataset.items();
        for start in (0..n_items).step_by(ITEM_TILE.max(1)) {
            let end = (start + ITEM_TILE).min(n_items);
            let gathered = gather_columns(
                dataset.schema(),
                items[start..end].iter().map(Vec::as_slice),
                end - start,
            );
            fill_rows_columnar(
                model,
                &gathered,
                &mut scratch,
                &mut data[start * n_levels..end * n_levels],
            );
        }
        EmissionTable {
            n_items,
            n_levels,
            data,
        }
    }

    /// Reference cell-by-cell fill: `n_items · S` calls to
    /// [`SkillModel::item_log_likelihood`] through per-value enum
    /// dispatch.
    ///
    /// Kept as the bitwise baseline the columnar [`EmissionTable::build`]
    /// is pinned against (property tests) and as the speedup denominator
    /// in `bench_emission`; production paths never call it.
    pub fn build_scalar(model: &SkillModel, dataset: &Dataset) -> Self {
        let n_items = dataset.n_items();
        let n_levels = model.n_levels();
        let mut data = Vec::with_capacity(n_items * n_levels);
        for features in dataset.items() {
            for s0 in 0..n_levels {
                data.push(model.item_log_likelihood(features, skill_level_from_index(s0)));
            }
        }
        EmissionTable {
            n_items,
            n_levels,
            data,
        }
    }

    /// Builds the table with `threads` workers stealing item chunks.
    ///
    /// The output buffer is allocated once up front and split into
    /// disjoint `PARALLEL_CHUNK`-row windows; workers pop windows from a
    /// shared queue and run the columnar fill *directly into the final
    /// buffer*, so there is no per-chunk row vector and no stitch copy at
    /// the end. Falls back to the sequential build when one thread (or
    /// one chunk) suffices.
    pub fn build_parallel(model: &SkillModel, dataset: &Dataset, threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(CoreError::InvalidParallelism { threads: 0 });
        }
        let n_items = dataset.n_items();
        let n_levels = model.n_levels();
        let n_chunks = n_items.div_ceil(PARALLEL_CHUNK).max(1);
        if threads <= 1 || n_chunks <= 1 || n_levels == 0 {
            return Ok(Self::build(model, dataset));
        }

        let n_workers = threads.min(n_chunks);
        let mut data = vec![0.0f64; n_items * n_levels];
        let worker_results: Vec<Result<()>> = {
            // Ownership of disjoint output windows moves through the
            // queue, so workers write concurrently without aliasing and
            // without any unsafe code.
            let jobs: Vec<(usize, &mut [f64])> = data
                .chunks_mut(PARALLEL_CHUNK * n_levels)
                .enumerate()
                .collect();
            let queue = std::sync::Mutex::new(jobs);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|_| {
                        let queue = &queue;
                        scope.spawn(move || -> Result<()> {
                            let mut scratch: Vec<f64> = Vec::new();
                            loop {
                                let job = crate::sync::lock(queue).pop();
                                let Some((chunk, window)) = job else {
                                    return Ok(());
                                };
                                let start = chunk * PARALLEL_CHUNK;
                                let end = start + window.len() / n_levels;
                                let gathered = gather_columns(
                                    dataset.schema(),
                                    dataset.items()[start..end].iter().map(Vec::as_slice),
                                    end - start,
                                );
                                fill_rows_columnar(model, &gathered, &mut scratch, window);
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or(Err(CoreError::WorkerPanicked {
                            step: "emission table",
                        }))
                    })
                    .collect()
            })
        };
        for worker in worker_results {
            worker?;
        }
        Ok(EmissionTable {
            n_items,
            n_levels,
            data,
        })
    }

    /// Number of items (table rows).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of skill levels `S` (table columns).
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// The emission vector of one item at all levels (`row[s - 1]`).
    ///
    /// # Panics
    /// Panics if `item` is out of range; use [`EmissionTable::checked_row`]
    /// when the item id is not already dataset-validated.
    pub fn row(&self, item: ItemId) -> &[f64] {
        let i = item as usize;
        &self.data[i * self.n_levels..(i + 1) * self.n_levels]
    }

    /// Bounds-checked variant of [`EmissionTable::row`].
    pub fn checked_row(&self, item: ItemId) -> Option<&[f64]> {
        let i = item as usize;
        if i >= self.n_items {
            return None;
        }
        Some(&self.data[i * self.n_levels..(i + 1) * self.n_levels])
    }

    /// `log P(item | s)`, mirroring [`SkillModel::item_log_likelihood`]:
    /// out-of-range items or levels score `-inf` (a forbidden DP path)
    /// rather than erroring.
    pub fn log_likelihood(&self, item: ItemId, s: SkillLevel) -> f64 {
        let level = s as usize;
        if level == 0 || level > self.n_levels {
            return f64::NEG_INFINITY;
        }
        match self.checked_row(item) {
            Some(row) => row[level - 1],
            None => f64::NEG_INFINITY,
        }
    }

    /// Incremental invalidation: recomputes only the rows of `items`.
    ///
    /// Online and forgetting paths that re-fit a handful of item-touching
    /// distributions can keep the rest of the table warm. The model and
    /// dataset must have the shapes the table was built with; a stale item
    /// id is reported, not silently skipped.
    pub fn refresh_items(
        &mut self,
        model: &SkillModel,
        dataset: &Dataset,
        items: &[ItemId],
    ) -> Result<()> {
        if model.n_levels() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "emission table levels vs model levels",
                left: self.n_levels,
                right: model.n_levels(),
            });
        }
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "emission table items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        // Validate every id before touching any row so a stale id cannot
        // leave the table half-refreshed.
        for &item in items {
            let i = item as usize;
            if i >= self.n_items {
                return Err(CoreError::FeatureIndexOutOfBounds {
                    index: i,
                    len: self.n_items,
                });
            }
        }
        if items.is_empty() {
            return Ok(());
        }
        let n_levels = self.n_levels;
        let gathered = gather_columns(
            dataset.schema(),
            items.iter().map(|&item| dataset.item_features(item)),
            items.len(),
        );
        let mut scratch = Vec::new();
        let mut rows = vec![0.0f64; items.len() * n_levels];
        fill_rows_columnar(model, &gathered, &mut scratch, &mut rows);
        for (&item, row) in items.iter().zip(rows.chunks(n_levels.max(1))) {
            let i = item as usize;
            self.data[i * n_levels..(i + 1) * n_levels].copy_from_slice(row);
        }
        Ok(())
    }

    /// Incremental invalidation by *level*: recomputes column `s` of every
    /// item for the levels flagged in `levels` (zero-based, one flag per
    /// level).
    ///
    /// The incremental trainer refits only the levels whose sufficient
    /// statistics changed and reuses the previous iteration's
    /// distributions (bitwise) everywhere else, so the table columns of
    /// untouched levels are still exact — refreshing just the refit
    /// columns costs `n_items · n_refit · F` evaluations instead of a
    /// full `n_items · S · F` rebuild.
    pub fn refresh_levels(
        &mut self,
        model: &SkillModel,
        dataset: &Dataset,
        levels: &[bool],
    ) -> Result<()> {
        if model.n_levels() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "emission table levels vs model levels",
                left: self.n_levels,
                right: model.n_levels(),
            });
        }
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "emission table items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        if levels.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "refresh flags vs levels",
                left: levels.len(),
                right: self.n_levels,
            });
        }
        if !levels.iter().any(|&d| d) || self.n_items == 0 {
            return Ok(());
        }
        let n_levels = self.n_levels;
        // Cache-blocked like `build`: gather one item tile, evaluate each
        // dirty level into a tile-sized contiguous scratch column, then
        // scatter into column `s₀` of the tile's rows. Per-cell values
        // are independent of the tile size, so this is bitwise identical
        // to the whole-axis refresh for every tile width.
        let mut column = vec![0.0f64; ITEM_TILE.min(self.n_items)];
        let items = dataset.items();
        for start in (0..self.n_items).step_by(ITEM_TILE.max(1)) {
            let end = (start + ITEM_TILE).min(self.n_items);
            let gathered = gather_columns(
                dataset.schema(),
                items[start..end].iter().map(Vec::as_slice),
                end - start,
            );
            let column = &mut column[..end - start];
            let window = &mut self.data[start * n_levels..end * n_levels];
            for (s0, _) in levels.iter().enumerate().filter(|&(_, &dirty)| dirty) {
                column.fill(0.0);
                match model.level_row(skill_level_from_index(s0)) {
                    Ok(row) => {
                        for (dist, feature_column) in row.iter().zip(&gathered.columns) {
                            evaluate_column(dist, feature_column, column);
                        }
                    }
                    Err(_) => column.fill(f64::NEG_INFINITY),
                }
                if gathered.any_hard {
                    for (cell, &bad) in column.iter_mut().zip(&gathered.hard_poison) {
                        if bad {
                            *cell = f64::NEG_INFINITY;
                        }
                    }
                }
                for (row, &v) in window.chunks_mut(n_levels).zip(column.iter()) {
                    if let Some(cell) = row.get_mut(s0) {
                        *cell = v;
                    }
                }
            }
        }
        Ok(())
    }

    /// Scans every cell for poison values — NaN or `+inf` — and reports
    /// the first offender's coordinates. `-inf` is a *legal* score (a
    /// forbidden DP path under Eq. 2) and passes.
    ///
    /// The invariant layer ([`crate::invariants::InvariantCtx`]) calls
    /// this after every build and refresh, so corrupted parameters or a
    /// poisoned dataset are caught before any DP reads the table.
    pub fn verify_finite(&self) -> Result<()> {
        let n_levels = self.n_levels;
        for (idx, &v) in self.data.iter().enumerate() {
            if v.is_nan() || (v.is_infinite() && v.is_sign_positive()) {
                return Err(CoreError::InvariantViolation {
                    check: "emission table",
                    detail: format!(
                        "poison value {v} at item {}, level {}",
                        idx / n_levels,
                        idx % n_levels + 1
                    ),
                });
            }
        }
        Ok(())
    }

    /// Posterior `P(s | item)` under a prior `P(s)` (Eq. 10), read from the
    /// table row. Replicates [`SkillModel::skill_posterior`] step for step
    /// (same log-space max trick, same impossible-item fallback to the
    /// normalized prior) so both paths produce identical distributions.
    pub fn posterior(&self, item: ItemId, prior: &[f64]) -> Result<Vec<f64>> {
        if prior.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "skill prior vs levels",
                left: prior.len(),
                right: self.n_levels,
            });
        }
        let row = self
            .checked_row(item)
            .ok_or(CoreError::FeatureIndexOutOfBounds {
                index: item as usize,
                len: self.n_items,
            })?;
        let mut log_post: Vec<f64> = row
            .iter()
            .zip(prior)
            .map(|(&ll, &p)| {
                if p > 0.0 {
                    ll + p.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // The item is impossible under every level; fall back to the
            // prior itself so downstream code still gets a distribution.
            let total: f64 = prior.iter().sum();
            if total <= 0.0 {
                return Err(CoreError::InvalidProbability {
                    context: "skill prior sum",
                    value: total,
                });
            }
            return Ok(prior.iter().map(|&p| p / total).collect());
        }
        let mut total = 0.0;
        for lp in log_post.iter_mut() {
            *lp = (*lp - max).exp();
            total += *lp;
        }
        for lp in log_post.iter_mut() {
            *lp /= total;
        }
        Ok(log_post)
    }

    /// Expected skill level `Σ_s s · P(s | item)` — the generation-based
    /// difficulty of Eq. 11, evaluated from one table row.
    pub fn expected_level(&self, item: ItemId, prior: &[f64]) -> Result<f64> {
        let post = self.posterior(item, prior)?;
        Ok(post
            .iter()
            .enumerate()
            .map(|(idx, &p)| (idx + 1) as f64 * p)
            .sum())
    }

    /// Resident bytes of the score storage.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

/// Half-width storage for the emission table.
///
/// Scores are computed with the full f64 columnar pipeline, then rounded
/// once to `f32` (round-to-nearest) for storage, halving the resident
/// table — the difference that matters at the ROADMAP's 10–100× item
/// scale, where the f64 table stops fitting in L2. Reads widen back to
/// f64 (exactly) before any DP accumulates them, so the only deviation
/// from [`EmissionTable`] is the one rounding step per cell: ≤ half an
/// f32 ulp, ~6e-8 relative. Gated behind
/// `ParallelConfig::with_emission_f32`; the default f64 table keeps every
/// result bitwise identical to the direct path.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactEmissionTable {
    n_items: usize,
    n_levels: usize,
    /// Row-major scores: `data[item * n_levels + (s - 1)]`.
    data: Vec<f32>,
}

impl CompactEmissionTable {
    /// Rounds a full-precision table to f32 storage.
    pub fn from_table(table: &EmissionTable) -> Self {
        CompactEmissionTable {
            n_items: table.n_items,
            n_levels: table.n_levels,
            data: table.data.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Builds directly from a model and dataset — f64 accumulation
    /// through the columnar kernels, one final rounding to f32.
    pub fn build(model: &SkillModel, dataset: &Dataset) -> Self {
        Self::from_table(&EmissionTable::build(model, dataset))
    }

    /// Number of items (table rows).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of skill levels `S` (table columns).
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Widens one item row into `out` (`out[s - 1]`), returning `false`
    /// when the item is out of range or `out` has the wrong length.
    ///
    /// The assignment DP borrows emission rows as `&[f64]`, so the
    /// compact path fills a caller-owned workspace row instead of
    /// handing out a reference.
    pub fn fill_row(&self, item: ItemId, out: &mut [f64]) -> bool {
        let i = item as usize;
        if i >= self.n_items || out.len() != self.n_levels {
            return false;
        }
        let row = &self.data[i * self.n_levels..(i + 1) * self.n_levels];
        for (dst, &v) in out.iter_mut().zip(row) {
            *dst = f64::from(v);
        }
        true
    }

    /// `log P(item | s)` with the [`EmissionTable::log_likelihood`]
    /// out-of-range contract.
    pub fn log_likelihood(&self, item: ItemId, s: SkillLevel) -> f64 {
        let level = s as usize;
        let i = item as usize;
        if level == 0 || level > self.n_levels || i >= self.n_items {
            return f64::NEG_INFINITY;
        }
        let row = &self.data[i * self.n_levels..(i + 1) * self.n_levels];
        row.get(level - 1)
            .copied()
            .map_or(f64::NEG_INFINITY, f64::from)
    }

    /// Resident bytes of the score storage — half of
    /// [`EmissionTable::memory_bytes`] for the same shape.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution, Poisson};
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::{Action, ActionSequence};

    #[test]
    fn refresh_levels_recomputes_only_flagged_columns() {
        let (model_a, ds) = mixed_setup();
        // A second model differing only in the level-2 row.
        let schema = ds.schema().clone();
        let cells = vec![
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.9, 0.1]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
            ],
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.3, 0.7]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(4.0).unwrap()),
            ],
        ];
        let model_b = SkillModel::new(schema, 2, cells).unwrap();

        let mut table = EmissionTable::build(&model_a, &ds);
        // No flags set: a no-op.
        table
            .refresh_levels(&model_b, &ds, &[false, false])
            .unwrap();
        let fresh_a = EmissionTable::build(&model_a, &ds);
        for item in 0..ds.n_items() as ItemId {
            assert_eq!(table.row(item), fresh_a.row(item));
        }
        // Refresh only level 2: column 1 must match a fresh build of the
        // new model bit for bit, column 0 must stay the old model's.
        table.refresh_levels(&model_b, &ds, &[false, true]).unwrap();
        let fresh_b = EmissionTable::build(&model_b, &ds);
        for item in 0..ds.n_items() as ItemId {
            assert_eq!(table.row(item)[0].to_bits(), fresh_a.row(item)[0].to_bits());
            assert_eq!(table.row(item)[1].to_bits(), fresh_b.row(item)[1].to_bits());
        }
        // Wrong flag count is an error, not a silent zip.
        assert!(table.refresh_levels(&model_b, &ds, &[true]).is_err());
    }

    fn mixed_setup() -> (SkillModel, Dataset) {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 2 },
            FeatureKind::Count,
        ])
        .unwrap();
        let cells = vec![
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.9, 0.1]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
            ],
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(vec![0.1, 0.9]).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(6.0).unwrap()),
            ],
        ];
        let model = SkillModel::new(schema.clone(), 2, cells).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0), FeatureValue::Count(2)],
            vec![FeatureValue::Categorical(1), FeatureValue::Count(7)],
            vec![FeatureValue::Categorical(0), FeatureValue::Count(5)],
        ];
        let seq = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 2),
                Action::new(2, 0, 1),
            ],
        )
        .unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        (model, ds)
    }

    #[test]
    fn columnar_build_matches_scalar_build_bitwise() {
        let (model, ds) = mixed_setup();
        let columnar = EmissionTable::build(&model, &ds);
        let scalar = EmissionTable::build_scalar(&model, &ds);
        assert_eq!(columnar, scalar);
    }

    #[test]
    fn compact_table_rounds_each_cell_once() {
        let (model, ds) = mixed_setup();
        let full = EmissionTable::build(&model, &ds);
        let compact = CompactEmissionTable::from_table(&full);
        assert_eq!(compact, CompactEmissionTable::build(&model, &ds));
        assert_eq!(compact.n_items(), full.n_items());
        assert_eq!(compact.n_levels(), full.n_levels());
        assert_eq!(compact.memory_bytes() * 2, full.memory_bytes());
        let mut row = vec![0.0f64; compact.n_levels()];
        for item in 0..ds.n_items() as ItemId {
            assert!(compact.fill_row(item, &mut row));
            for (s0, &widened) in row.iter().enumerate() {
                let expected = f64::from(full.row(item)[s0] as f32);
                assert_eq!(widened.to_bits(), expected.to_bits());
                let s = (s0 + 1) as SkillLevel;
                assert_eq!(
                    compact.log_likelihood(item, s).to_bits(),
                    expected.to_bits()
                );
            }
        }
        // Out-of-range contracts mirror the f64 table.
        assert!(!compact.fill_row(99, &mut row));
        let mut short = vec![0.0f64; 1];
        assert!(!compact.fill_row(0, &mut short));
        assert_eq!(compact.log_likelihood(0, 0), f64::NEG_INFINITY);
        assert_eq!(compact.log_likelihood(99, 1), f64::NEG_INFINITY);
    }

    #[test]
    fn table_matches_direct_evaluation_bitwise() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        assert_eq!(table.n_items(), 3);
        assert_eq!(table.n_levels(), 2);
        for item in 0..3u32 {
            let features = ds.item_features(item);
            for s in 1..=2u8 {
                let direct = model.item_log_likelihood(features, s);
                assert_eq!(table.log_likelihood(item, s), direct);
                assert_eq!(table.row(item)[s as usize - 1], direct);
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (model, ds) = mixed_setup();
        let seq_table = EmissionTable::build(&model, &ds);
        // Few items → falls back to sequential, still exact.
        let par_table = EmissionTable::build_parallel(&model, &ds, 4).unwrap();
        assert_eq!(seq_table, par_table);
        assert!(EmissionTable::build_parallel(&model, &ds, 0).is_err());
    }

    #[test]
    fn parallel_build_matches_on_many_items() {
        // More items than one chunk so real workers engage.
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 4 }]).unwrap();
        let cells = vec![
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.4, 0.3, 0.2, 0.1]).unwrap(),
            )],
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
            )],
        ];
        let model = SkillModel::new(schema.clone(), 2, cells).unwrap();
        let n_items = 3 * super::PARALLEL_CHUNK + 7;
        let items: Vec<Vec<FeatureValue>> = (0..n_items)
            .map(|i| vec![FeatureValue::Categorical((i % 4) as u32)])
            .collect();
        let actions: Vec<Action> = (0..n_items)
            .map(|t| Action::new(t as i64, 0, t as u32))
            .collect();
        let seq = ActionSequence::new(0, actions).unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        let seq_table = EmissionTable::build(&model, &ds);
        let par_table = EmissionTable::build_parallel(&model, &ds, 3).unwrap();
        assert_eq!(seq_table, par_table);
    }

    #[test]
    fn out_of_range_scores_neg_inf_or_none() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        assert!(table.checked_row(99).is_none());
        assert_eq!(table.log_likelihood(99, 1), f64::NEG_INFINITY);
        assert_eq!(table.log_likelihood(0, 0), f64::NEG_INFINITY);
        assert_eq!(table.log_likelihood(0, 3), f64::NEG_INFINITY);
    }

    #[test]
    fn posterior_matches_model_posterior() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        let prior = [0.3, 0.7];
        for item in 0..3u32 {
            let direct = model
                .skill_posterior(ds.item_features(item), &prior)
                .unwrap();
            let tabled = table.posterior(item, &prior).unwrap();
            assert_eq!(direct, tabled);
        }
        assert!(table.posterior(0, &[1.0]).is_err());
        assert!(table.posterior(42, &prior).is_err());
    }

    #[test]
    fn expected_level_is_prior_weighted_mean() {
        let (model, ds) = mixed_setup();
        let table = EmissionTable::build(&model, &ds);
        let prior = [0.5, 0.5];
        let e = table.expected_level(1, &prior).unwrap();
        let post = table.posterior(1, &prior).unwrap();
        assert!((e - (post[0] + 2.0 * post[1])).abs() < 1e-15);
        assert!((1.0..=2.0).contains(&e));
    }

    #[test]
    fn verify_finite_accepts_neg_inf_rejects_nan_and_pos_inf() {
        let (model, ds) = mixed_setup();
        let mut table = EmissionTable::build(&model, &ds);
        assert!(table.verify_finite().is_ok());
        // -inf is a legal "forbidden path" score.
        table.data[3] = f64::NEG_INFINITY;
        assert!(table.verify_finite().is_ok());
        // NaN and +inf are poison; the error names the coordinates.
        table.data[3] = f64::NAN;
        let err = table.verify_finite().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("item 1") && msg.contains("level 2"), "{msg}");
        table.data[3] = f64::INFINITY;
        assert!(table.verify_finite().is_err());
    }

    #[test]
    fn refresh_items_updates_only_requested_rows() {
        let (model, ds) = mixed_setup();
        let mut table = EmissionTable::build(&model, &ds);
        // Perturb two rows, then refresh one of them.
        let s = table.n_levels();
        table.data[0] = 123.0;
        table.data[s] = 456.0; // item 1, level 1
        table.refresh_items(&model, &ds, &[0]).unwrap();
        let fresh = EmissionTable::build(&model, &ds);
        assert_eq!(table.row(0), fresh.row(0));
        assert_eq!(table.row(1)[0], 456.0);
        table.refresh_items(&model, &ds, &[1]).unwrap();
        assert_eq!(table, fresh);
        assert!(table.refresh_items(&model, &ds, &[9]).is_err());
    }
}
