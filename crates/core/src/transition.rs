//! Probabilistic skill transitions — the §IV-A/§VII extension.
//!
//! The base model treats "stay" and "advance" as equally acceptable and
//! lets the emission likelihoods decide. Following Shin et al. (2018), this
//! module adds an explicit transition component: a per-level probability of
//! staying vs. moving up one level, plus an initial-level distribution.
//! The DP objective becomes the full joint
//! `log P(s_1) + Σ_n log P(s_n | s_{n−1}) + Σ_n log P(i_n | s_n)`.
//!
//! Transition parameters are re-estimated from the hard assignments each
//! iteration (counts with additive smoothing), so the extension slots into
//! the same alternating trainer.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{ActionSequence, Dataset, SkillAssignments, SkillLevel};

/// Per-level stay/advance probabilities and the initial-level distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    /// `stay[s-1]` = P(stay at level s); advance probability is
    /// `1 − stay[s-1]` (forced to 1.0 at the top level).
    stay: Vec<f64>,
    /// Initial-level distribution `init[s-1]` (sums to 1).
    init: Vec<f64>,
}

impl TransitionModel {
    /// Builds a transition model, validating probability ranges.
    pub fn new(stay: Vec<f64>, init: Vec<f64>) -> Result<Self> {
        if stay.len() != init.len() || stay.is_empty() {
            return Err(CoreError::LengthMismatch {
                context: "transition stay vs init",
                left: stay.len(),
                right: init.len(),
            });
        }
        for &p in &stay {
            if !(0.0..=1.0).contains(&p) {
                return Err(CoreError::InvalidProbability {
                    context: "stay probability",
                    value: p,
                });
            }
        }
        let sum: f64 = init.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || init.iter().any(|&p| p < 0.0) {
            return Err(CoreError::InvalidProbability {
                context: "initial-level distribution",
                value: sum,
            });
        }
        let mut model = Self { stay, init };
        // Top level can only stay.
        if let Some(last) = model.stay.last_mut() {
            *last = 1.0;
        }
        Ok(model)
    }

    /// The "uninformative" transition model: uniform initial distribution,
    /// stay probability ½ everywhere (1 at the top). With these values the
    /// extended DP reduces to the base DP up to a constant per sequence.
    pub fn uninformative(n_levels: usize) -> Result<Self> {
        if n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        Self::new(vec![0.5; n_levels], vec![1.0 / n_levels as f64; n_levels])
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.stay.len()
    }

    /// `log P(stay at s)`.
    pub fn log_stay(&self, s: SkillLevel) -> f64 {
        self.stay
            .get(s as usize - 1)
            .map(|&p| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY })
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// `log P(advance from s to s+1)`.
    pub fn log_advance(&self, s: SkillLevel) -> f64 {
        self.stay
            .get(s as usize - 1)
            .map(|&p| {
                let adv = 1.0 - p;
                if adv > 0.0 {
                    adv.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// `log P(initial level = s)`.
    pub fn log_init(&self, s: SkillLevel) -> f64 {
        self.init
            .get(s as usize - 1)
            .map(|&p| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY })
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Stay probabilities per level.
    pub fn stay_probs(&self) -> &[f64] {
        &self.stay
    }

    /// Initial distribution per level.
    pub fn init_probs(&self) -> &[f64] {
        &self.init
    }
}

/// DP assignment including transition log-probabilities.
pub fn assign_sequence_with_transitions(
    model: &SkillModel,
    transitions: &TransitionModel,
    dataset: &Dataset,
    sequence: &ActionSequence,
) -> Result<crate::assign::SequenceAssignment> {
    let s_max = model.n_levels();
    if transitions.n_levels() != s_max {
        return Err(CoreError::LengthMismatch {
            context: "transition model vs skill model levels",
            left: transitions.n_levels(),
            right: s_max,
        });
    }
    let n = sequence.len();
    if n == 0 {
        return Ok(crate::assign::SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    let emit: Vec<Vec<f64>> = sequence
        .actions()
        .iter()
        .map(|a| model.item_log_likelihoods(dataset.item_features(a.item)))
        .collect();

    let mut prev: Vec<f64> = (0..s_max)
        .map(|s| transitions.log_init((s + 1) as SkillLevel) + emit[0][s])
        .collect();
    let mut curr = vec![f64::NEG_INFINITY; s_max];
    let mut advanced = vec![false; n * s_max];
    for (t, emit_t) in emit.iter().enumerate().skip(1) {
        for s in 0..s_max {
            let stay = prev[s] + transitions.log_stay((s + 1) as SkillLevel);
            let up = if s > 0 {
                prev[s - 1] + transitions.log_advance(s as SkillLevel)
            } else {
                f64::NEG_INFINITY
            };
            let (best, from_below) = if up > stay { (up, true) } else { (stay, false) };
            curr[s] = best + emit_t[s];
            advanced[t * s_max + s] = from_below;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    let (mut best_s, mut best_ll) = (0usize, f64::NEG_INFINITY);
    for (s, &ll) in prev.iter().enumerate() {
        if ll > best_ll {
            best_ll = ll;
            best_s = s;
        }
    }
    if crate::float_cmp::is_neg_infinity(best_ll) {
        return Err(CoreError::DegenerateFit {
            distribution: "transition DP",
            reason: "all paths have zero probability",
        });
    }
    let mut levels = vec![0 as SkillLevel; n];
    let mut s = best_s;
    for t in (0..n).rev() {
        levels[t] = (s + 1) as SkillLevel;
        if t > 0 && advanced[t * s_max + s] {
            s -= 1;
        }
    }
    Ok(crate::assign::SequenceAssignment {
        levels,
        log_likelihood: best_ll,
    })
}

/// Re-estimates transition parameters from hard assignments with additive
/// smoothing `lambda` on both the stay/advance counts and the initial
/// distribution.
pub fn fit_transitions(
    assignments: &SkillAssignments,
    n_levels: usize,
    lambda: f64,
) -> Result<TransitionModel> {
    if n_levels == 0 {
        return Err(CoreError::InvalidSkillCount { requested: 0 });
    }
    if !lambda.is_finite() || lambda < 0.0 {
        return Err(CoreError::InvalidProbability {
            context: "transition smoothing",
            value: lambda,
        });
    }
    let mut stay_counts = vec![0.0f64; n_levels];
    let mut advance_counts = vec![0.0f64; n_levels];
    let mut init_counts = vec![0.0f64; n_levels];
    for seq in &assignments.per_user {
        if let Some(&first) = seq.first() {
            let idx = first as usize - 1;
            if idx >= n_levels {
                return Err(CoreError::InvalidSkillCount {
                    requested: first as usize,
                });
            }
            init_counts[idx] += 1.0;
        }
        for w in seq.windows(2) {
            let (a, b) = (w[0] as usize - 1, w[1] as usize - 1);
            if b == a {
                stay_counts[a] += 1.0;
            } else if b == a + 1 {
                advance_counts[a] += 1.0;
            } else {
                return Err(CoreError::UnsortedSequence {
                    user: 0,
                    position: 0,
                });
            }
        }
    }
    let stay: Vec<f64> = (0..n_levels)
        .map(|s| {
            let total = stay_counts[s] + advance_counts[s] + 2.0 * lambda;
            if total > 0.0 {
                (stay_counts[s] + lambda) / total
            } else {
                0.5
            }
        })
        .collect();
    let init_total: f64 = init_counts.iter().sum::<f64>() + lambda * n_levels as f64;
    let init: Vec<f64> = init_counts
        .iter()
        .map(|&c| {
            if init_total > 0.0 {
                (c + lambda) / init_total
            } else {
                1.0 / n_levels as f64
            }
        })
        .collect();
    TransitionModel::new(stay, init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::Action;

    fn diagonal_setup(s_max: usize) -> (SkillModel, Dataset) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical {
            cardinality: s_max as u32,
        }])
        .unwrap();
        let cells = (0..s_max)
            .map(|s| {
                let mut probs = vec![0.1 / (s_max as f64 - 1.0).max(1.0); s_max];
                probs[s] = 0.9;
                let total: f64 = probs.iter().sum();
                for p in probs.iter_mut() {
                    *p /= total;
                }
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(probs).unwrap(),
                )]
            })
            .collect();
        let model = SkillModel::new(schema.clone(), s_max, cells).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..s_max as u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let seq = ActionSequence::new(
            0,
            (0..s_max * 2)
                .map(|t| Action::new(t as i64, 0, (t / 2) as u32))
                .collect(),
        )
        .unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        (model, ds)
    }

    #[test]
    fn model_validation() {
        assert!(TransitionModel::new(vec![0.5], vec![1.0]).is_ok());
        assert!(TransitionModel::new(vec![1.5], vec![1.0]).is_err());
        assert!(TransitionModel::new(vec![0.5, 0.5], vec![0.3, 0.3]).is_err());
        assert!(TransitionModel::new(vec![], vec![]).is_err());
        assert!(TransitionModel::uninformative(0).is_err());
    }

    #[test]
    fn top_level_always_stays() {
        let m = TransitionModel::new(vec![0.3, 0.3], vec![0.5, 0.5]).unwrap();
        assert_eq!(m.stay_probs()[1], 1.0);
        assert_eq!(m.log_advance(2), f64::NEG_INFINITY);
    }

    #[test]
    fn uninformative_transitions_match_base_dp_assignment() {
        let (model, ds) = diagonal_setup(3);
        let seq = &ds.sequences()[0];
        let base = crate::assign::assign_sequence(&model, &ds, seq).unwrap();
        let trans = TransitionModel::uninformative(3).unwrap();
        let ext = assign_sequence_with_transitions(&model, &trans, &ds, seq).unwrap();
        assert_eq!(base.levels, ext.levels);
    }

    #[test]
    fn sticky_transitions_discourage_advancing() {
        let (model, ds) = diagonal_setup(3);
        let seq = &ds.sequences()[0];
        // Extremely sticky: advancing costs ln(0.0001).
        let sticky = TransitionModel::new(vec![0.9999, 0.9999, 1.0], vec![1.0 / 3.0; 3]).unwrap();
        let ext = assign_sequence_with_transitions(&model, &sticky, &ds, seq).unwrap();
        // The path should advance fewer times than the emission-optimal 2.
        let advances = ext.levels.windows(2).filter(|w| w[1] > w[0]).count();
        assert!(advances < 2, "levels {:?}", ext.levels);
    }

    #[test]
    fn fit_transitions_counts_correctly() {
        let a = SkillAssignments {
            per_user: vec![vec![1, 1, 2, 2, 2], vec![2, 3, 3], vec![1, 2]],
        };
        let m = fit_transitions(&a, 3, 0.0).unwrap();
        // Level 1: stays 1 (1→1), advances 2 (1→2 twice) → stay = 1/3.
        assert!((m.stay_probs()[0] - 1.0 / 3.0).abs() < 1e-12);
        // Level 2: stays 2, advances 1 → 2/3.
        assert!((m.stay_probs()[1] - 2.0 / 3.0).abs() < 1e-12);
        // Initial levels: two sequences start at 1, one at 2.
        assert!((m.init_probs()[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.init_probs()[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fit_transitions_rejects_nonmonotone_jumps() {
        let a = SkillAssignments {
            per_user: vec![vec![1, 3]],
        };
        assert!(fit_transitions(&a, 3, 0.01).is_err());
    }

    #[test]
    fn fit_transitions_smoothing_keeps_probabilities_interior() {
        let a = SkillAssignments {
            per_user: vec![vec![1, 1, 1]],
        };
        let m = fit_transitions(&a, 2, 0.5).unwrap();
        assert!(m.stay_probs()[0] > 0.0 && m.stay_probs()[0] < 1.0);
        assert!(m.init_probs()[1] > 0.0);
    }
}
