//! Incremental sufficient statistics for the coordinate-ascent trainer.
//!
//! The update step of the paper's trainer (§IV-B) refits every
//! `(skill, feature)` cell from scratch each iteration — `O(|A| · F)`
//! accumulator pushes — even though the convergence trace shows assignment
//! churn collapsing after the first few iterations. Because all of our
//! per-cell sufficient statistics are **additive over actions**, and every
//! action's feature values are a pure function of its item, the statistics
//! of a whole level can be represented exactly as an integer histogram
//! *"how many actions of item `i` are currently assigned level `s`"*.
//!
//! [`StatsGrid`] is that histogram: an `S × n_items` grid of `u64` counts,
//! built once on the first iteration and then maintained by applying
//! per-action deltas (`−1` on the old level, `+1` on the new one) only
//! where the assigned level actually moved — `O(n_changed)` integer
//! updates instead of an `O(|A| · F)` rescan. Refitting replays the
//! histogram through the regular [`FeatureAccumulator`]s in ascending item
//! order with weighted pushes (`O(S · n_items · F)`, independent of
//! `|A|`), then fits cells with the unchanged closed-form estimators. The
//! grid additionally tracks *which levels* the deltas touched, so
//! [`StatsGrid::fit_model_incremental`] replays only dirty rows and
//! reuses the previous model's distributions for untouched levels — also
//! exact, because a cell fit is a pure function of its histogram row and
//! the smoothing constant.
//!
//! ## Exactness
//!
//! Integer histogram deltas are *exact*: an add followed by a remove
//! restores the previous grid bit for bit, so incremental training is
//! deterministic and independent of thread count or delta order. Replay
//! order (ascending item id) is itself canonical, which means incremental
//! results cannot drift across iterations. Relative to the legacy
//! action-order [`crate::update::accumulate`], replayed statistics are
//! bitwise identical for the integer-summation families (categorical
//! counts; Poisson/count sums, which are exact integer sums below `2^53`)
//! and agree to summation-order rounding (ulps) for the real-valued
//! gamma/log-normal moments. The trainer uses one path or the other for a
//! whole run — toggled by `ParallelConfig::incremental` — so each run is
//! internally consistent; `bench_incremental` checks end-to-end agreement
//! of the two paths.
//!
//! [`SoftStatsGrid`] carries the same idea over to the EM trainer
//! (`crate::em`), where the statistic per `(level, item)` cell is a real
//! *responsibility mass* `Σ γ(a, s)` instead of an integer count. The grid
//! is maintained by tolerance-gated responsibility deltas after every
//! E-step, and dirty-level replay serves the weighted M-step —
//! `bench_em_incremental` measures that path against the from-scratch EM
//! accumulation.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::dist::{FeatureAccumulator, FeatureDistribution};
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::parallel::ParallelConfig;
use crate::types::{item_id_from_index, skill_level_from_index, Dataset, SkillAssignments};

/// Minimum number of users per worker before parallel build/delta paths
/// engage; below this the coordination cost exceeds the scan cost.
const MIN_USERS_PER_WORKER: usize = 8;

/// Persistent per-level item histogram: the exact sufficient statistics of
/// a skill assignment, in incrementally-updatable form.
///
/// `counts[s · n_items + i]` = number of actions of item `i` currently
/// assigned skill level `s + 1`. Memory cost is `8 · S · n_items` bytes
/// (40 kB at the default synthetic scale of 200 items × 5 levels),
/// independent of the number of actions.
#[derive(Debug, Clone)]
pub struct StatsGrid {
    n_levels: usize,
    n_items: usize,
    counts: Vec<u64>,
    /// Levels whose histogram changed since the last incremental fit;
    /// all-true until [`StatsGrid::fit_model_incremental`] first runs.
    dirty: Vec<bool>,
    /// When the grid is an item-range shard, the half-open slice of the
    /// item axis it accumulated; `None` for whole-axis grids (including
    /// user-partition partials). Checked for disjointness on merge.
    item_range: Option<(usize, usize)>,
}

/// Equality compares the histogram only — the dirty bookkeeping is an
/// optimization detail that never affects observable results (refitting a
/// clean row reproduces the reused distributions bit for bit).
impl PartialEq for StatsGrid {
    fn eq(&self, other: &Self) -> bool {
        self.n_levels == other.n_levels
            && self.n_items == other.n_items
            && self.counts == other.counts
    }
}

impl Eq for StatsGrid {}

impl StatsGrid {
    /// Creates an all-zero grid.
    pub fn new(n_levels: usize, n_items: usize) -> Result<Self> {
        if n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        Ok(Self {
            n_levels,
            n_items,
            counts: vec![0; n_levels * n_items],
            dirty: vec![true; n_levels],
            item_range: None,
        })
    }

    /// Creates an all-zero **item-range shard**: a full-shape grid that
    /// promises to accumulate statistics only for items in
    /// `start..end`. The declared range is checked for disjointness
    /// when shards are merged (debug / `strict-invariants` builds).
    pub fn shard_for_items(
        n_levels: usize,
        n_items: usize,
        start: usize,
        end: usize,
    ) -> Result<Self> {
        if start > end || end > n_items {
            return Err(CoreError::LengthMismatch {
                context: "shard item range vs item count",
                left: end,
                right: n_items,
            });
        }
        let mut grid = Self::new(n_levels, n_items)?;
        grid.item_range = Some((start, end));
        Ok(grid)
    }

    /// The declared item range when this grid is an item-range shard.
    pub fn item_range(&self) -> Option<(usize, usize)> {
        self.item_range
    }

    /// Adds `other`'s histogram into this grid cell by cell.
    ///
    /// Integer addition is exact and order-free, so merging per-worker
    /// partials in any order reproduces the sequential build bit for
    /// bit. Dirty flags are OR-ed. Shape mismatches return a typed
    /// [`CoreError::LengthMismatch`]; merging two shards with
    /// overlapping declared item ranges (a double count) is rejected in
    /// debug / `strict-invariants` builds. When both operands declare
    /// ranges, the result's range is their convex hull.
    pub fn merge(&mut self, other: &StatsGrid) -> Result<()> {
        if other.n_levels != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "merged grid levels",
                left: self.n_levels,
                right: other.n_levels,
            });
        }
        if other.n_items != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "merged grid items",
                left: self.n_items,
                right: other.n_items,
            });
        }
        crate::invariants::InvariantCtx::new().check_disjoint_shards(
            "stats grid merge",
            self.item_range,
            other.item_range,
        )?;
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        for (d, &o) in self.dirty.iter_mut().zip(&other.dirty) {
            *d |= o;
        }
        self.item_range = match (self.item_range, other.item_range) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            _ => None,
        };
        Ok(())
    }

    /// Recomputes the dirty flags by comparing this grid's histogram
    /// rows against `prev`'s: a level is dirty iff its row changed.
    ///
    /// This is how the chunked trainer recovers incremental-refit dirty
    /// tracking from per-iteration rebuilt grids: the delta path marks
    /// levels an action moved in or out of, which is always a superset
    /// of the rows that actually changed — and refitting an
    /// unchanged-row level reproduces the reused distributions bit for
    /// bit, so the two dirty sets produce identical models.
    pub fn mark_dirty_from(&mut self, prev: &StatsGrid) -> Result<()> {
        if prev.n_levels != self.n_levels || prev.n_items != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "dirty comparison grid shape",
                left: self.n_levels * self.n_items,
                right: prev.n_levels * prev.n_items,
            });
        }
        if self.n_items == 0 {
            self.dirty.fill(false);
            return Ok(());
        }
        for (d, (cur, old)) in self.dirty.iter_mut().zip(
            self.counts
                .chunks_exact(self.n_items)
                .zip(prev.counts.chunks_exact(self.n_items)),
        ) {
            *d = cur != old;
        }
        Ok(())
    }

    /// Number of skill levels `S`.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Number of items the grid covers.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Count of actions of item `item` assigned level `s + 1`
    /// (`s` is the zero-based level index).
    pub fn count(&self, s: usize, item: usize) -> u64 {
        self.counts[s * self.n_items + item]
    }

    /// Total number of actions represented by the grid.
    pub fn total_actions(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Builds the grid from scratch with one sequential pass over the
    /// dataset (`O(|A|)` integer increments).
    pub fn build(
        dataset: &Dataset,
        assignments: &SkillAssignments,
        n_levels: usize,
    ) -> Result<Self> {
        let mut grid = Self::new(n_levels, dataset.n_items())?;
        validate_shape(dataset, assignments)?;
        for (seq, levels) in dataset.sequences().iter().zip(&assignments.per_user) {
            for (action, &level) in seq.actions().iter().zip(levels) {
                let s = level_index(level, n_levels)?;
                bump(&mut grid.counts, grid.n_items, s, action.item as usize)?;
            }
        }
        Ok(grid)
    }

    /// Builds the grid with `threads` workers over disjoint user ranges,
    /// merging per-worker partial grids by integer addition — exact, so
    /// the result is identical to [`StatsGrid::build`] for any thread
    /// count.
    pub fn build_parallel(
        dataset: &Dataset,
        assignments: &SkillAssignments,
        n_levels: usize,
        threads: usize,
    ) -> Result<Self> {
        let n_users = dataset.n_users();
        let n_workers = threads.min(n_users / MIN_USERS_PER_WORKER).max(1);
        if n_workers <= 1 {
            return Self::build(dataset, assignments, n_levels);
        }
        validate_shape(dataset, assignments)?;
        let mut grid = Self::new(n_levels, dataset.n_items())?;
        let n_items = grid.n_items;
        let sequences = dataset.sequences();
        let per_user = &assignments.per_user;

        let next = AtomicUsize::new(0);
        let partials: Vec<Result<Vec<u64>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || -> Result<Vec<u64>> {
                        let mut local = vec![0u64; n_levels * n_items];
                        loop {
                            let u = next.fetch_add(1, Ordering::Relaxed);
                            let (Some(seq), Some(levels)) = (sequences.get(u), per_user.get(u))
                            else {
                                break;
                            };
                            for (action, &level) in seq.actions().iter().zip(levels) {
                                let s = level_index(level, n_levels)?;
                                bump(&mut local, n_items, s, action.item as usize)?;
                            }
                        }
                        Ok(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(CoreError::WorkerPanicked {
                        step: "stats build",
                    }))
                })
                .collect()
        });
        for partial in partials {
            for (dst, src) in grid.counts.iter_mut().zip(partial?) {
                *dst += src;
            }
        }
        Ok(grid)
    }

    /// Builds sequentially or in parallel per `config` (user-parallel work,
    /// so it follows the `users` flag).
    pub fn build_with_config(
        dataset: &Dataset,
        assignments: &SkillAssignments,
        n_levels: usize,
        config: &ParallelConfig,
    ) -> Result<Self> {
        if config.users && config.threads > 1 {
            Self::build_parallel(dataset, assignments, n_levels, config.threads)
        } else {
            Self::build(dataset, assignments, n_levels)
        }
    }

    /// Applies the assignment delta `prev → next`: for every action whose
    /// level moved, decrements the old `(level, item)` cell and increments
    /// the new one. Returns the number of changed actions.
    ///
    /// `prev` must be the assignment the grid currently represents;
    /// removing from an empty cell (the tell-tale of a stale grid) is an
    /// error, as are ragged inputs.
    pub fn apply_delta(
        &mut self,
        dataset: &Dataset,
        prev: &SkillAssignments,
        next: &SkillAssignments,
    ) -> Result<usize> {
        validate_shape(dataset, next)?;
        validate_delta_shape(prev, next)?;
        let mut changed = 0usize;
        for ((seq, prev_u), next_u) in dataset
            .sequences()
            .iter()
            .zip(&prev.per_user)
            .zip(&next.per_user)
        {
            if prev_u == next_u {
                continue; // fast path: slice compare, no per-action work
            }
            for ((action, &old), &new) in seq.actions().iter().zip(prev_u).zip(next_u) {
                if old == new {
                    continue;
                }
                let s_old = level_index(old, self.n_levels)?;
                let s_new = level_index(new, self.n_levels)?;
                let item = action.item as usize;
                decrement(&mut self.counts, self.n_items, s_old, item)?;
                bump(&mut self.counts, self.n_items, s_new, item)?;
                mark_dirty(&mut self.dirty, s_old);
                mark_dirty(&mut self.dirty, s_new);
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// [`StatsGrid::apply_delta`] with `threads` workers over disjoint user
    /// ranges. Each worker accumulates a signed per-worker delta grid;
    /// the deltas are merged into the histogram by integer addition, so
    /// the result is identical to the sequential path for any thread
    /// count.
    pub fn apply_delta_parallel(
        &mut self,
        dataset: &Dataset,
        prev: &SkillAssignments,
        next: &SkillAssignments,
        threads: usize,
    ) -> Result<usize> {
        let n_users = dataset.n_users();
        let n_workers = threads.min(n_users / MIN_USERS_PER_WORKER).max(1);
        if n_workers <= 1 {
            return self.apply_delta(dataset, prev, next);
        }
        validate_shape(dataset, next)?;
        validate_delta_shape(prev, next)?;
        let n_levels = self.n_levels;
        let n_items = self.n_items;
        let sequences = dataset.sequences();

        let next_idx = AtomicUsize::new(0);
        let partials: Vec<Result<(usize, Vec<i64>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    let next_idx = &next_idx;
                    let prev = &prev.per_user;
                    let next = &next.per_user;
                    scope.spawn(move || -> Result<(usize, Vec<i64>)> {
                        let mut delta = vec![0i64; n_levels * n_items];
                        let mut changed = 0usize;
                        loop {
                            let u = next_idx.fetch_add(1, Ordering::Relaxed);
                            let (Some(seq), Some(prev_u), Some(next_u)) =
                                (sequences.get(u), prev.get(u), next.get(u))
                            else {
                                break;
                            };
                            if prev_u == next_u {
                                continue;
                            }
                            for ((action, &old), &new) in
                                seq.actions().iter().zip(prev_u).zip(next_u)
                            {
                                if old == new {
                                    continue;
                                }
                                let s_old = level_index(old, n_levels)?;
                                let s_new = level_index(new, n_levels)?;
                                let item = action.item as usize;
                                shift(&mut delta, n_items, s_old, item, -1)?;
                                shift(&mut delta, n_items, s_new, item, 1)?;
                                changed += 1;
                            }
                        }
                        Ok((changed, delta))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(CoreError::WorkerPanicked {
                        step: "stats delta",
                    }))
                })
                .collect()
        });

        let mut changed = 0usize;
        let (counts, dirty) = (&mut self.counts, &mut self.dirty);
        for partial in partials {
            let (n, delta) = partial?;
            changed += n;
            if n_items == 0 {
                continue; // no cells to merge (and `chunks` needs a width)
            }
            for ((row, delta_row), flag) in counts
                .chunks_mut(n_items)
                .zip(delta.chunks(n_items))
                .zip(dirty.iter_mut())
            {
                for (cell, &d) in row.iter_mut().zip(delta_row) {
                    if d == 0 {
                        continue;
                    }
                    *flag = true;
                    let updated = *cell as i128 + d as i128;
                    if updated < 0 {
                        return Err(CoreError::DegenerateFit {
                            distribution: "stats grid",
                            reason: "delta removes an action the grid never observed",
                        });
                    }
                    *cell = updated as u64;
                }
            }
        }
        Ok(changed)
    }

    /// [`StatsGrid::apply_delta`] dispatched per `config` (follows the
    /// `users` flag, like the build).
    pub fn apply_delta_with_config(
        &mut self,
        dataset: &Dataset,
        prev: &SkillAssignments,
        next: &SkillAssignments,
        config: &ParallelConfig,
    ) -> Result<usize> {
        if config.users && config.threads > 1 {
            self.apply_delta_parallel(dataset, prev, next, config.threads)
        } else {
            self.apply_delta(dataset, prev, next)
        }
    }

    /// Adds one newly observed action at the given level: a single `+1`
    /// on the `(level, item)` cell, marking that level dirty. This is the
    /// streaming counterpart of [`StatsGrid::apply_delta`] — an append has
    /// no previous level to remove. `O(1)`.
    pub fn add_action(
        &mut self,
        item: crate::types::ItemId,
        level: crate::types::SkillLevel,
    ) -> Result<()> {
        let s = level_index(level, self.n_levels)?;
        let item = item as usize;
        if item >= self.n_items {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: item,
                len: self.n_items,
            });
        }
        self.counts[s * self.n_items + item] += 1;
        self.dirty[s] = true;
        Ok(())
    }

    /// Replays the histogram into per-(skill, feature) accumulators —
    /// ascending item order, weighted pushes. `O(S · n_items · F)`,
    /// independent of the number of actions.
    pub fn accumulators(&self, dataset: &Dataset) -> Result<Vec<Vec<FeatureAccumulator>>> {
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "stats grid items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        let schema = dataset.schema();
        let mut grid: Vec<Vec<FeatureAccumulator>> = (0..self.n_levels)
            .map(|_| {
                schema
                    .kinds()
                    .iter()
                    .map(|&k| FeatureAccumulator::new(k))
                    .collect()
            })
            .collect();
        for (s, row) in grid.iter_mut().enumerate() {
            let counts = &self.counts[s * self.n_items..(s + 1) * self.n_items];
            for (item, &k) in counts.iter().enumerate() {
                if k == 0 {
                    continue;
                }
                let features = dataset.item_features(item_id_from_index(item));
                for (acc, value) in row.iter_mut().zip(features) {
                    acc.push_n(value, k)?;
                }
            }
        }
        Ok(grid)
    }

    /// Fits a full [`SkillModel`] from the grid (sequential replay).
    pub fn fit_model(&self, dataset: &Dataset, lambda: f64) -> Result<SkillModel> {
        let grid = self.accumulators(dataset)?;
        let cells = crate::update::fit_cells(&grid, lambda)?;
        SkillModel::new(dataset.schema().clone(), self.n_levels, cells)
    }

    /// Fits a full [`SkillModel`] with the update-step parallelism of
    /// `config`: workers own disjoint `(skill, feature)` cells and replay
    /// only their own histogram rows (`O(n_items)` per cell — no dataset
    /// rescan). Per-cell arithmetic is identical to the sequential replay,
    /// so the fitted model matches [`StatsGrid::fit_model`] bit for bit.
    pub fn fit_model_parallel(
        &self,
        dataset: &Dataset,
        lambda: f64,
        config: &ParallelConfig,
    ) -> Result<SkillModel> {
        config.validate()?;
        if !config.update_parallel() {
            return self.fit_model(dataset, lambda);
        }
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "stats grid items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        let n_levels = self.n_levels;
        let n_items = self.n_items;
        let schema = dataset.schema();
        let n_features = schema.len();

        // Same cell partition as `parallel::fit_model_parallel`.
        let level_parts = if config.skills {
            config.threads.min(n_levels)
        } else {
            1
        };
        let feature_parts = if config.features {
            (config.threads / level_parts).max(1).min(n_features)
        } else {
            1
        };
        let owner = |s: usize, f: usize| -> usize {
            (s % level_parts) * feature_parts + (f % feature_parts)
        };
        let n_workers = level_parts * feature_parts;

        let results: Vec<Result<Vec<(usize, usize, FeatureDistribution)>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|worker| {
                        scope.spawn(
                            move || -> Result<Vec<(usize, usize, FeatureDistribution)>> {
                                let mut out = Vec::new();
                                for s in 0..n_levels {
                                    for f in 0..n_features {
                                        if owner(s, f) != worker {
                                            continue;
                                        }
                                        let mut acc = FeatureAccumulator::new(schema.kind(f)?);
                                        let counts = &self.counts[s * n_items..(s + 1) * n_items];
                                        for (item, &k) in counts.iter().enumerate() {
                                            if k == 0 {
                                                continue;
                                            }
                                            let features =
                                                dataset.item_features(item_id_from_index(item));
                                            let value = features.get(f).ok_or(
                                                CoreError::FeatureIndexOutOfBounds {
                                                    index: f,
                                                    len: features.len(),
                                                },
                                            )?;
                                            acc.push_n(value, k)?;
                                        }
                                        out.push((s, f, acc.fit(lambda)?));
                                    }
                                }
                                Ok(out)
                            },
                        )
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or(Err(CoreError::WorkerPanicked { step: "update" }))
                    })
                    .collect()
            });

        let mut grid: Vec<Vec<Option<FeatureDistribution>>> =
            (0..n_levels).map(|_| vec![None; n_features]).collect();
        for chunk in results {
            for (s, f, dist) in chunk? {
                // An out-of-partition pair cannot happen; if it ever did,
                // the "unowned cell" check below reports the gap.
                if let Some(slot) = grid.get_mut(s).and_then(|row| row.get_mut(f)) {
                    *slot = Some(dist);
                }
            }
        }
        let cells: Vec<Vec<FeatureDistribution>> = grid
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|c| {
                        c.ok_or(CoreError::DegenerateFit {
                            distribution: "parallel update",
                            reason: "unowned cell in partition",
                        })
                    })
                    .collect()
            })
            .collect::<Result<_>>()?;
        SkillModel::new(schema.clone(), n_levels, cells)
    }

    /// Per-level dirty flags: `true` for levels whose histogram changed
    /// since the last [`StatsGrid::fit_model_incremental`] call (all
    /// `true` on a freshly built grid).
    pub fn dirty_levels(&self) -> &[bool] {
        &self.dirty
    }

    /// Fits a model refitting **only the levels whose histogram changed**
    /// since the last incremental fit, reusing `prev`'s distributions for
    /// untouched levels. A cell fit is a deterministic pure function of
    /// its histogram row and `lambda`, so the reused rows are bitwise
    /// identical to what a refit would produce — `prev` must therefore be
    /// the model produced by the previous fit of *this* grid with the
    /// same `lambda` (the trainer maintains exactly that invariant).
    /// Falls back to a full [`StatsGrid::fit_model_parallel`] when `prev`
    /// is absent, shaped differently, or every level is dirty. Clears the
    /// dirty flags on success.
    pub fn fit_model_incremental(
        &mut self,
        dataset: &Dataset,
        lambda: f64,
        parallel: &ParallelConfig,
        prev: Option<&SkillModel>,
    ) -> Result<SkillModel> {
        let schema = dataset.schema();
        let reusable = prev.filter(|m| {
            m.n_levels() == self.n_levels
                && m.n_features() == schema.len()
                && !self.dirty.iter().all(|&d| d)
        });
        let model = match reusable {
            None => self.fit_model_parallel(dataset, lambda, parallel)?,
            Some(prev) => {
                if dataset.n_items() != self.n_items {
                    return Err(CoreError::LengthMismatch {
                        context: "stats grid items vs dataset items",
                        left: self.n_items,
                        right: dataset.n_items(),
                    });
                }
                let mut cells: Vec<Vec<FeatureDistribution>> = Vec::with_capacity(self.n_levels);
                for (s, &is_dirty) in self.dirty.iter().enumerate() {
                    if !is_dirty {
                        cells.push(prev.level_row(skill_level_from_index(s))?.to_vec());
                        continue;
                    }
                    let mut accs: Vec<FeatureAccumulator> = schema
                        .kinds()
                        .iter()
                        .map(|&k| FeatureAccumulator::new(k))
                        .collect();
                    let counts = &self.counts[s * self.n_items..(s + 1) * self.n_items];
                    for (item, &k) in counts.iter().enumerate() {
                        if k == 0 {
                            continue;
                        }
                        let features = dataset.item_features(item_id_from_index(item));
                        for (acc, value) in accs.iter_mut().zip(features) {
                            acc.push_n(value, k)?;
                        }
                    }
                    cells.push(accs.iter().map(|a| a.fit(lambda)).collect::<Result<_>>()?);
                }
                SkillModel::new(schema.clone(), self.n_levels, cells)?
            }
        };
        self.dirty.fill(false);
        Ok(model)
    }

    /// Debug-mode cross-check: rebuilds the histogram from scratch for
    /// `assignments` and verifies every cell matches. Cheap relative to a
    /// full accumulate (integer increments only); the trainer runs it
    /// under `debug_assertions` after every delta application.
    pub fn cross_check(&self, dataset: &Dataset, assignments: &SkillAssignments) -> Result<()> {
        let fresh = Self::build(dataset, assignments, self.n_levels)?;
        if fresh != *self {
            return Err(CoreError::DegenerateFit {
                distribution: "stats grid",
                reason: "incremental grid diverged from from-scratch rebuild",
            });
        }
        Ok(())
    }
}

/// Persistent per-level soft responsibility mass: the EM analogue of
/// [`StatsGrid`].
///
/// `weights[s · n_items + i]` holds `Σ_a γ(a, s)` over all actions `a`
/// whose item is `i` — the exact weighted sufficient statistics of the EM
/// M-step, in incrementally-updatable form. Alongside the weights the grid
/// stores every action's last applied posterior row (`gammas[a · S + s]`),
/// so after each E-step an action contributes only the *delta*
/// `γ_new − γ_old` to its item's cells, and only when some level moved by
/// more than the gate `tolerance` — actions whose posteriors have settled
/// cost one comparison instead of `S · F` accumulator pushes. Levels whose
/// weights changed are flagged dirty so the M-step refits only those rows
/// (replayed item-major, `O(S · n_items · F)` pushes independent of
/// `|A|`) and the emission table refreshes only those columns.
///
/// With `tolerance = 0` every changed posterior is applied and each weight
/// equals the full-EM sum up to floating-point summation order; a positive
/// gate trades a bounded weight error (`≤ tolerance` per gated action per
/// level) for skipping settled actions. Deltas are applied sequentially on
/// the calling thread, so the grid is deterministic and independent of
/// worker-thread count.
#[derive(Debug, Clone)]
pub struct SoftStatsGrid {
    n_levels: usize,
    n_items: usize,
    /// Level-major responsibility mass per item.
    weights: Vec<f64>,
    /// Last applied posterior row per action, action-major.
    gammas: Vec<f64>,
    /// Gate: a posterior row is reapplied only when some level moved by
    /// more than this.
    tolerance: f64,
    /// Levels whose weights changed since [`SoftStatsGrid::clear_dirty`].
    dirty: Vec<bool>,
    /// Declared item-axis slice when this grid is an item-range shard;
    /// `None` for whole-axis grids. See [`StatsGrid::shard_for_items`].
    item_range: Option<(usize, usize)>,
}

impl SoftStatsGrid {
    /// Creates an all-zero grid covering `n_actions` actions.
    ///
    /// Every stored posterior starts at zero, so the first E-step applies
    /// each action's full posterior row and marks every level dirty.
    pub fn new(n_levels: usize, n_items: usize, n_actions: usize, tolerance: f64) -> Result<Self> {
        if n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        if !tolerance.is_finite() || tolerance < 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "responsibility delta tolerance",
                value: tolerance,
            });
        }
        Ok(Self {
            n_levels,
            n_items,
            weights: vec![0.0; n_levels * n_items],
            gammas: vec![0.0; n_actions * n_levels],
            tolerance,
            dirty: vec![false; n_levels],
            item_range: None,
        })
    }

    /// Creates an all-zero **item-range shard** promising to accumulate
    /// responsibility mass only for items in `start..end`. The soft
    /// analogue of [`StatsGrid::shard_for_items`]; the declared range
    /// is checked for disjointness on merge.
    pub fn shard_for_items(
        n_levels: usize,
        n_items: usize,
        n_actions: usize,
        tolerance: f64,
        start: usize,
        end: usize,
    ) -> Result<Self> {
        if start > end || end > n_items {
            return Err(CoreError::LengthMismatch {
                context: "shard item range vs item count",
                left: end,
                right: n_items,
            });
        }
        let mut grid = Self::new(n_levels, n_items, n_actions, tolerance)?;
        grid.item_range = Some((start, end));
        Ok(grid)
    }

    /// The declared item range when this grid is an item-range shard.
    pub fn item_range(&self) -> Option<(usize, usize)> {
        self.item_range
    }

    /// Adds `other`'s responsibility mass (and stored posteriors) into
    /// this grid elementwise, OR-ing the dirty flags.
    ///
    /// Unlike the integer [`StatsGrid::merge`] this is a floating-point
    /// sum, so the merged weights depend on merge order at the ulp
    /// level — shards must partition their contributions (disjoint item
    /// ranges, or disjoint action sets for the stored posteriors) for
    /// the merge to be meaningful. Shape mismatches return a typed
    /// [`CoreError::LengthMismatch`]; overlapping declared item ranges
    /// are rejected in debug / `strict-invariants` builds.
    pub fn merge(&mut self, other: &SoftStatsGrid) -> Result<()> {
        if other.n_levels != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "merged grid levels",
                left: self.n_levels,
                right: other.n_levels,
            });
        }
        if other.n_items != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "merged grid items",
                left: self.n_items,
                right: other.n_items,
            });
        }
        if other.gammas.len() != self.gammas.len() {
            return Err(CoreError::LengthMismatch {
                context: "merged grid stored posteriors",
                left: self.gammas.len(),
                right: other.gammas.len(),
            });
        }
        crate::invariants::InvariantCtx::new().check_disjoint_shards(
            "soft stats grid merge",
            self.item_range,
            other.item_range,
        )?;
        for (w, &o) in self.weights.iter_mut().zip(&other.weights) {
            *w += o;
        }
        for (g, &o) in self.gammas.iter_mut().zip(&other.gammas) {
            *g += o;
        }
        for (d, &o) in self.dirty.iter_mut().zip(&other.dirty) {
            *d |= o;
        }
        self.item_range = match (self.item_range, other.item_range) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            _ => None,
        };
        Ok(())
    }

    /// Number of skill levels `S`.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Number of items the grid covers.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of actions whose posteriors the grid currently stores.
    pub fn n_actions(&self) -> usize {
        self.gammas.len() / self.n_levels
    }

    /// The responsibility-delta gate this grid was created with.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Responsibility mass of item `item` at zero-based level `s`.
    pub fn weight(&self, s: usize, item: usize) -> f64 {
        self.weights[s * self.n_items + item]
    }

    /// The responsibility mass of every item at zero-based level `s`.
    pub fn level_weights(&self, s: usize) -> &[f64] {
        &self.weights[s * self.n_items..(s + 1) * self.n_items]
    }

    /// Per-level dirty flags: `true` for levels whose weights changed
    /// since the last [`SoftStatsGrid::clear_dirty`].
    pub fn dirty_levels(&self) -> &[bool] {
        &self.dirty
    }

    /// Marks every level clean (call after refitting the dirty rows).
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(false);
    }

    /// Applies the freshly computed posterior row of action `a_idx`
    /// (its global index in dataset order) on `item`.
    ///
    /// Returns `Ok(true)` when the row moved past the gate and its deltas
    /// were applied, `Ok(false)` when the action was skipped as settled.
    pub fn update_action(
        &mut self,
        a_idx: usize,
        item: crate::types::ItemId,
        gamma: &[f64],
    ) -> Result<bool> {
        if gamma.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "posterior row vs grid levels",
                left: gamma.len(),
                right: self.n_levels,
            });
        }
        let item_idx = item as usize;
        if item_idx >= self.n_items {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: item_idx,
                len: self.n_items,
            });
        }
        let n_actions = self.gammas.len() / self.n_levels;
        let start = a_idx * self.n_levels;
        let stored = self.gammas.get_mut(start..start + self.n_levels).ok_or(
            CoreError::FeatureIndexOutOfBounds {
                index: a_idx,
                len: n_actions,
            },
        )?;
        let moved = stored
            .iter()
            .zip(gamma)
            .any(|(&old, &new)| (new - old).abs() > self.tolerance);
        if !moved {
            return Ok(false);
        }
        // The item's weight cells across levels form a stride-`n_items`
        // column of the level-major grid.
        let column = self.weights.iter_mut().skip(item_idx).step_by(self.n_items);
        for (((old, &new), cell), flag) in stored
            .iter_mut()
            .zip(gamma)
            .zip(column)
            .zip(self.dirty.iter_mut())
        {
            let delta = new - *old;
            if delta.abs() > 0.0 {
                *cell += delta;
                *flag = true;
            }
            *old = new;
        }
        Ok(true)
    }

    /// Appends a brand-new action (e.g. one ingested by a streaming
    /// session) on `item` with posterior row `gamma`, growing the stored
    /// posteriors by one row and applying the full mass unconditionally —
    /// a new action has no previous contribution to gate against.
    pub fn push_action(&mut self, item: crate::types::ItemId, gamma: &[f64]) -> Result<()> {
        if gamma.len() != self.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "posterior row vs grid levels",
                left: gamma.len(),
                right: self.n_levels,
            });
        }
        let item_idx = item as usize;
        if item_idx >= self.n_items {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: item_idx,
                len: self.n_items,
            });
        }
        self.gammas.extend_from_slice(gamma);
        let column = self.weights.iter_mut().skip(item_idx).step_by(self.n_items);
        for ((&g, cell), flag) in gamma.iter().zip(column).zip(self.dirty.iter_mut()) {
            if g.abs() > 0.0 {
                *cell += g;
                *flag = true;
            }
        }
        Ok(())
    }

    /// Fits a model refitting **only the levels whose responsibility mass
    /// changed** since the last [`SoftStatsGrid::clear_dirty`], reusing
    /// `prev`'s distributions for untouched levels — the weighted (EM)
    /// analogue of [`StatsGrid::fit_model_incremental`]. Each dirty level
    /// is replayed item-major through the weighted accumulators
    /// (`O(n_items · F)` pushes, independent of `|A|`). Falls back to
    /// refitting every level when `prev` is absent or shaped differently.
    /// Clears the dirty flags on success.
    ///
    /// A weighted cell fit is a deterministic pure function of the level's
    /// weight row and `lambda`, so `prev` must be the model produced by
    /// the previous fit of *this* grid with the same `lambda` for the
    /// reused rows to be exact (the streaming session maintains that
    /// invariant up to its construction-time convergence tolerance).
    pub fn fit_model_incremental(
        &mut self,
        dataset: &Dataset,
        lambda: f64,
        prev: Option<&SkillModel>,
    ) -> Result<SkillModel> {
        let schema = dataset.schema();
        if dataset.n_items() != self.n_items {
            return Err(CoreError::LengthMismatch {
                context: "soft stats grid items vs dataset items",
                left: self.n_items,
                right: dataset.n_items(),
            });
        }
        let reusable =
            prev.filter(|m| m.n_levels() == self.n_levels && m.n_features() == schema.len());
        let mut cells: Vec<Vec<FeatureDistribution>> = Vec::with_capacity(self.n_levels);
        for (s, &is_dirty) in self.dirty.iter().enumerate() {
            if let Some(prev) = reusable {
                if !is_dirty {
                    cells.push(prev.level_row(skill_level_from_index(s))?.to_vec());
                    continue;
                }
            }
            let mut accs: Vec<crate::em::WeightedAcc> = schema
                .kinds()
                .iter()
                .map(|&k| crate::em::WeightedAcc::new(k))
                .collect();
            for (features, &w) in dataset.items().iter().zip(self.level_weights(s)) {
                if w <= 0.0 {
                    continue;
                }
                for (acc, value) in accs.iter_mut().zip(features) {
                    acc.push(value, w)?;
                }
            }
            cells.push(accs.iter().map(|a| a.fit(lambda)).collect::<Result<_>>()?);
        }
        let model = SkillModel::new(schema.clone(), self.n_levels, cells)?;
        self.dirty.fill(false);
        Ok(model)
    }
}

/// Increments the `(level s, item)` cell of a flat `S × n_items` grid,
/// reporting an out-of-range coordinate instead of panicking.
#[inline]
fn bump(counts: &mut [u64], n_items: usize, s: usize, item: usize) -> Result<()> {
    let cell = counts
        .get_mut(s * n_items + item)
        .ok_or(CoreError::FeatureIndexOutOfBounds {
            index: item,
            len: n_items,
        })?;
    *cell += 1;
    Ok(())
}

/// Decrements the `(level s, item)` cell, failing on out-of-range
/// coordinates *and* on removing an action the grid never observed (the
/// tell-tale of a stale grid).
#[inline]
fn decrement(counts: &mut [u64], n_items: usize, s: usize, item: usize) -> Result<()> {
    let cell = counts
        .get_mut(s * n_items + item)
        .ok_or(CoreError::FeatureIndexOutOfBounds {
            index: item,
            len: n_items,
        })?;
    *cell = cell.checked_sub(1).ok_or(CoreError::DegenerateFit {
        distribution: "stats grid",
        reason: "delta removes an action the grid never observed",
    })?;
    Ok(())
}

/// Adds `by` to the `(level s, item)` cell of a signed delta grid.
#[inline]
fn shift(delta: &mut [i64], n_items: usize, s: usize, item: usize, by: i64) -> Result<()> {
    let cell = delta
        .get_mut(s * n_items + item)
        .ok_or(CoreError::FeatureIndexOutOfBounds {
            index: item,
            len: n_items,
        })?;
    *cell += by;
    Ok(())
}

/// Sets the dirty flag of level row `s` (no-op out of range; callers
/// validate `s` through [`level_index`] first).
#[inline]
fn mark_dirty(dirty: &mut [bool], s: usize) {
    if let Some(flag) = dirty.get_mut(s) {
        *flag = true;
    }
}

/// Maps a 1-based skill level to its grid row, validating the range.
#[inline]
fn level_index(level: crate::types::SkillLevel, n_levels: usize) -> Result<usize> {
    let s = level as usize;
    if s == 0 || s > n_levels {
        return Err(CoreError::InvalidSkillCount { requested: s });
    }
    Ok(s - 1)
}

/// Validates that `assignments` matches the dataset shape (user count and
/// per-user sequence lengths).
fn validate_shape(dataset: &Dataset, assignments: &SkillAssignments) -> Result<()> {
    if assignments.per_user.len() != dataset.n_users() {
        return Err(CoreError::LengthMismatch {
            context: "assignments vs sequences",
            left: assignments.per_user.len(),
            right: dataset.n_users(),
        });
    }
    for (seq, levels) in dataset.sequences().iter().zip(&assignments.per_user) {
        if seq.len() != levels.len() {
            return Err(CoreError::LengthMismatch {
                context: "assignment vs sequence length",
                left: levels.len(),
                right: seq.len(),
            });
        }
    }
    Ok(())
}

/// Validates that two assignments have identical (non-ragged) shape.
fn validate_delta_shape(prev: &SkillAssignments, next: &SkillAssignments) -> Result<()> {
    if prev.per_user.len() != next.per_user.len() {
        return Err(CoreError::LengthMismatch {
            context: "previous vs next assignments",
            left: prev.per_user.len(),
            right: next.per_user.len(),
        });
    }
    for (p, n) in prev.per_user.iter().zip(&next.per_user) {
        if p.len() != n.len() {
            return Err(CoreError::LengthMismatch {
                context: "previous vs next assignment lengths",
                left: p.len(),
                right: n.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::{Action, ActionSequence};

    fn build_dataset(n_users: usize, len: usize) -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 4 },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..4u32)
            .map(|c| {
                vec![
                    FeatureValue::Categorical(c),
                    FeatureValue::Count(2 + c as u64 * 3),
                ]
            })
            .collect();
        let sequences: Vec<ActionSequence> = (0..n_users as u32)
            .map(|u| {
                let actions: Vec<Action> = (0..len)
                    .map(|t| {
                        let item = ((t * 4 / len) as u32 + u) % 4;
                        Action::new(t as i64, u, item)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn merge_adds_counts_and_rejects_shape_mismatch() {
        let ds = build_dataset(8, 10);
        let assignments = staircase_assignments(&ds, 3);
        let full = StatsGrid::build(&ds, &assignments, 3).unwrap();
        // Split the users in half, build partials, merge.
        let half = SkillAssignments {
            per_user: assignments.per_user[..4].to_vec(),
        };
        let rest = SkillAssignments {
            per_user: assignments.per_user[4..].to_vec(),
        };
        let front = ds.subset_users(|s| s.user < 4).unwrap();
        let back = ds.subset_users(|s| s.user >= 4).unwrap();
        let mut merged = StatsGrid::build(&front, &half, 3).unwrap();
        let partial = StatsGrid::build(&back, &rest, 3).unwrap();
        merged.merge(&partial).unwrap();
        assert_eq!(merged, full);

        let wrong_levels = StatsGrid::new(2, ds.n_items()).unwrap();
        assert!(matches!(
            merged.merge(&wrong_levels),
            Err(CoreError::LengthMismatch {
                context: "merged grid levels",
                ..
            })
        ));
        let wrong_items = StatsGrid::new(3, 1).unwrap();
        assert!(matches!(
            merged.merge(&wrong_items),
            Err(CoreError::LengthMismatch {
                context: "merged grid items",
                ..
            })
        ));
    }

    #[test]
    fn item_range_shards_merge_disjoint_but_not_overlapping() {
        let mut left = StatsGrid::shard_for_items(2, 10, 0, 5).unwrap();
        let right = StatsGrid::shard_for_items(2, 10, 5, 10).unwrap();
        left.merge(&right).unwrap();
        assert_eq!(left.item_range(), Some((0, 10)));

        let overlapping = StatsGrid::shard_for_items(2, 10, 3, 8).unwrap();
        // Tests run with debug assertions, so the invariant layer is on.
        assert!(matches!(
            left.merge(&overlapping),
            Err(CoreError::InvariantViolation {
                check: "stats grid merge",
                ..
            })
        ));
        // A whole-axis partial merges into a shard freely.
        let whole = StatsGrid::new(2, 10).unwrap();
        left.merge(&whole).unwrap();
        assert_eq!(left.item_range(), None);

        assert!(matches!(
            StatsGrid::shard_for_items(2, 10, 4, 20),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn soft_merge_adds_mass_and_guards_ranges() {
        let mut a = SoftStatsGrid::shard_for_items(2, 4, 3, 0.0, 0, 2).unwrap();
        let mut b = SoftStatsGrid::shard_for_items(2, 4, 3, 0.0, 2, 4).unwrap();
        a.update_action(0, 0, &[0.25, 0.75]).unwrap();
        b.update_action(1, 3, &[0.5, 0.5]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.weight(1, 0), 0.75);
        assert_eq!(a.weight(0, 3), 0.5);
        assert_eq!(a.item_range(), Some((0, 4)));
        assert!(a.dirty_levels().iter().all(|&d| d));

        let overlapping = SoftStatsGrid::shard_for_items(2, 4, 3, 0.0, 1, 3).unwrap();
        assert!(matches!(
            a.merge(&overlapping),
            Err(CoreError::InvariantViolation {
                check: "soft stats grid merge",
                ..
            })
        ));
        let wrong_actions = SoftStatsGrid::new(2, 4, 99, 0.0).unwrap();
        assert!(matches!(
            a.merge(&wrong_actions),
            Err(CoreError::LengthMismatch {
                context: "merged grid stored posteriors",
                ..
            })
        ));
    }

    #[test]
    fn mark_dirty_from_flags_only_changed_rows() {
        let ds = build_dataset(6, 12);
        let assignments = staircase_assignments(&ds, 3);
        let prev = StatsGrid::build(&ds, &assignments, 3).unwrap();
        let mut next = prev.clone();
        next.mark_dirty_from(&prev).unwrap();
        assert!(next.dirty_levels().iter().all(|&d| !d));

        // Move one action of item 2 from level 1 to level 2.
        next.add_action(2, 2).unwrap();
        next.mark_dirty_from(&prev).unwrap();
        assert_eq!(next.dirty_levels(), &[false, true, false]);

        let wrong = StatsGrid::new(2, ds.n_items()).unwrap();
        assert!(next.mark_dirty_from(&wrong).is_err());
    }

    fn staircase_assignments(ds: &Dataset, n_levels: usize) -> SkillAssignments {
        let per_user = ds
            .sequences()
            .iter()
            .map(|seq| {
                (0..seq.len())
                    .map(|t| ((t * n_levels / seq.len().max(1)) + 1).min(n_levels) as u8)
                    .collect()
            })
            .collect();
        SkillAssignments { per_user }
    }

    #[test]
    fn build_counts_actions_per_level() {
        let ds = build_dataset(4, 8);
        let a = staircase_assignments(&ds, 3);
        let grid = StatsGrid::build(&ds, &a, 3).unwrap();
        assert_eq!(grid.total_actions() as usize, ds.n_actions());
        // Row sums must equal the number of actions at each level.
        for s in 0..3 {
            let manual: u64 = a
                .per_user
                .iter()
                .flatten()
                .filter(|&&l| l as usize == s + 1)
                .count() as u64;
            let row: u64 = (0..ds.n_items()).map(|i| grid.count(s, i)).sum();
            assert_eq!(row, manual, "level {}", s + 1);
        }
    }

    #[test]
    fn build_parallel_matches_sequential() {
        let ds = build_dataset(40, 12);
        let a = staircase_assignments(&ds, 4);
        let seq_grid = StatsGrid::build(&ds, &a, 4).unwrap();
        for threads in [2, 3, 5] {
            let par = StatsGrid::build_parallel(&ds, &a, 4, threads).unwrap();
            assert_eq!(seq_grid, par, "threads={threads}");
        }
    }

    #[test]
    fn delta_equals_rebuild() {
        let ds = build_dataset(6, 10);
        let before = staircase_assignments(&ds, 3);
        // Perturb: push the second half of every user's path one level up.
        let mut after = before.clone();
        for levels in &mut after.per_user {
            let half = levels.len() / 2;
            for l in &mut levels[half..] {
                *l = (*l + 1).min(3);
            }
        }
        let mut grid = StatsGrid::build(&ds, &before, 3).unwrap();
        let changed = grid.apply_delta(&ds, &before, &after).unwrap();
        let expected_changed = before
            .per_user
            .iter()
            .flatten()
            .zip(after.per_user.iter().flatten())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, expected_changed);
        assert_eq!(grid, StatsGrid::build(&ds, &after, 3).unwrap());
        grid.cross_check(&ds, &after).unwrap();
        // And back again: deltas are exactly invertible.
        let back = grid.apply_delta(&ds, &after, &before).unwrap();
        assert_eq!(back, expected_changed);
        assert_eq!(grid, StatsGrid::build(&ds, &before, 3).unwrap());
    }

    #[test]
    fn delta_parallel_matches_sequential() {
        let ds = build_dataset(48, 10);
        let before = staircase_assignments(&ds, 3);
        let mut after = before.clone();
        for (u, levels) in after.per_user.iter_mut().enumerate() {
            if u % 3 == 0 {
                for l in levels.iter_mut() {
                    *l = (*l + 1).min(3);
                }
            }
        }
        let mut seq_grid = StatsGrid::build(&ds, &before, 3).unwrap();
        let seq_changed = seq_grid.apply_delta(&ds, &before, &after).unwrap();
        for threads in [2, 4] {
            let mut par_grid = StatsGrid::build(&ds, &before, 3).unwrap();
            let par_changed = par_grid
                .apply_delta_parallel(&ds, &before, &after, threads)
                .unwrap();
            assert_eq!(seq_changed, par_changed);
            assert_eq!(seq_grid, par_grid, "threads={threads}");
        }
    }

    #[test]
    fn ragged_delta_is_rejected() {
        let ds = build_dataset(3, 6);
        let a = staircase_assignments(&ds, 2);
        let mut grid = StatsGrid::build(&ds, &a, 2).unwrap();
        let mut fewer_users = a.clone();
        fewer_users.per_user.pop();
        assert!(matches!(
            grid.apply_delta(&ds, &fewer_users, &a),
            Err(CoreError::LengthMismatch { .. })
        ));
        let mut short_user = a.clone();
        short_user.per_user[1].pop();
        assert!(matches!(
            grid.apply_delta(&ds, &short_user, &a),
            Err(CoreError::LengthMismatch { .. })
        ));
        // `next` must match the dataset too.
        assert!(matches!(
            grid.apply_delta(&ds, &a, &short_user),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn stale_grid_underflow_is_detected() {
        let ds = build_dataset(2, 4);
        let a = staircase_assignments(&ds, 2);
        let mut empty = StatsGrid::new(2, ds.n_items()).unwrap();
        // Claiming prev=a against an empty grid must underflow somewhere.
        let mut moved = a.clone();
        for l in &mut moved.per_user[0] {
            *l = if *l == 1 { 2 } else { 1 };
        }
        assert!(matches!(
            empty.apply_delta(&ds, &a, &moved),
            Err(CoreError::DegenerateFit { .. })
        ));
    }

    #[test]
    fn replayed_accumulators_match_accumulate_for_integer_stats() {
        let ds = build_dataset(5, 9);
        let a = staircase_assignments(&ds, 3);
        let grid = StatsGrid::build(&ds, &a, 3).unwrap();
        let replayed = grid.accumulators(&ds).unwrap();
        let scanned = crate::update::accumulate(&ds, &a, 3).unwrap();
        for (rrow, srow) in replayed.iter().zip(&scanned) {
            for (r, s) in rrow.iter().zip(srow) {
                match (r, s) {
                    (
                        FeatureAccumulator::Categorical { counts: rc },
                        FeatureAccumulator::Categorical { counts: sc },
                    ) => assert_eq!(rc, sc),
                    (
                        FeatureAccumulator::Count { sum: rs, n: rn },
                        FeatureAccumulator::Count { sum: ss, n: sn },
                    ) => {
                        // Integer-valued f64 sums: exact in either order.
                        assert_eq!(rs, ss);
                        assert_eq!(rn, sn);
                    }
                    _ => panic!("unexpected accumulator kinds"),
                }
            }
        }
    }

    #[test]
    fn fit_model_matches_update_fit_model() {
        let ds = build_dataset(6, 10);
        let a = staircase_assignments(&ds, 3);
        let grid = StatsGrid::build(&ds, &a, 3).unwrap();
        let from_grid = grid.fit_model(&ds, 0.01).unwrap();
        let from_scan = crate::update::fit_model(&ds, &a, 3, 0.01).unwrap();
        for item in 0..ds.n_items() {
            for s in 1..=3u8 {
                let g = from_grid.item_log_likelihood(ds.item_features(item as u32), s);
                let f = from_scan.item_log_likelihood(ds.item_features(item as u32), s);
                assert!((g - f).abs() < 1e-12, "item {item} level {s}: {g} vs {f}");
            }
        }
    }

    #[test]
    fn incremental_fit_reuses_clean_levels_bitwise() {
        let ds = build_dataset(6, 12);
        let before = staircase_assignments(&ds, 4);
        let mut grid = StatsGrid::build(&ds, &before, 4).unwrap();
        assert!(grid.dirty_levels().iter().all(|&d| d));
        let pc = ParallelConfig::sequential();
        let base = grid.fit_model_incremental(&ds, 0.01, &pc, None).unwrap();
        assert!(grid.dirty_levels().iter().all(|&d| !d));

        // Move a handful of actions from level 1 to level 2: only those
        // two rows become dirty.
        let mut after = before.clone();
        for levels in &mut after.per_user {
            if let Some(l) = levels.iter_mut().find(|l| **l == 1) {
                *l = 2;
            }
        }
        grid.apply_delta(&ds, &before, &after).unwrap();
        assert_eq!(grid.dirty_levels(), &[true, true, false, false]);

        // The partial refit must match a full from-scratch fit bit for bit,
        // both on the refit rows and the reused ones.
        let partial = grid
            .fit_model_incremental(&ds, 0.01, &pc, Some(&base))
            .unwrap();
        assert!(grid.dirty_levels().iter().all(|&d| !d));
        let full = StatsGrid::build(&ds, &after, 4)
            .unwrap()
            .fit_model(&ds, 0.01)
            .unwrap();
        for item in 0..ds.n_items() {
            for s in 1..=4u8 {
                let a = partial.item_log_likelihood(ds.item_features(item as u32), s);
                let b = full.item_log_likelihood(ds.item_features(item as u32), s);
                assert_eq!(a.to_bits(), b.to_bits(), "item {item} level {s}");
            }
        }
    }

    #[test]
    fn add_action_is_single_cell_increment() {
        let ds = build_dataset(3, 6);
        let a = staircase_assignments(&ds, 3);
        let mut grid = StatsGrid::build(&ds, &a, 3).unwrap();
        // Clear dirty flags via a full incremental fit, then append.
        let pc = ParallelConfig::sequential();
        let model = grid.fit_model_incremental(&ds, 0.01, &pc, None).unwrap();
        assert!(grid.dirty_levels().iter().all(|&d| !d));
        let before = grid.count(1, 2);
        let total = grid.total_actions();
        grid.add_action(2, 2).unwrap();
        assert_eq!(grid.count(1, 2), before + 1);
        assert_eq!(grid.total_actions(), total + 1);
        assert_eq!(grid.dirty_levels(), &[false, true, false]);
        // Out-of-range level or item must not touch the grid.
        assert!(grid.add_action(2, 0).is_err());
        assert!(grid.add_action(2, 4).is_err());
        assert!(grid.add_action(99, 1).is_err());
        assert_eq!(grid.total_actions(), total + 1);
        // The next incremental fit refits only the touched level.
        let refit = grid
            .fit_model_incremental(&ds, 0.01, &pc, Some(&model))
            .unwrap();
        assert_eq!(refit.n_levels(), 3);
        assert!(grid.dirty_levels().iter().all(|&d| !d));
    }

    #[test]
    fn fit_model_parallel_is_bitwise_identical_to_sequential_replay() {
        let ds = build_dataset(6, 10);
        let a = staircase_assignments(&ds, 3);
        let grid = StatsGrid::build(&ds, &a, 3).unwrap();
        let sequential = grid.fit_model(&ds, 0.01).unwrap();
        for (skills, features) in [(true, false), (false, true), (true, true)] {
            for threads in [2, 3, 6] {
                let cfg = ParallelConfig::sequential()
                    .with_skills(skills)
                    .with_features(features)
                    .with_threads(threads);
                let parallel = grid.fit_model_parallel(&ds, 0.01, &cfg).unwrap();
                for item in 0..ds.n_items() {
                    for s in 1..=3u8 {
                        let a = sequential.item_log_likelihood(ds.item_features(item as u32), s);
                        let b = parallel.item_log_likelihood(ds.item_features(item as u32), s);
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "skills={skills} features={features} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn soft_grid_validates_construction() {
        assert!(SoftStatsGrid::new(0, 4, 10, 0.0).is_err());
        assert!(SoftStatsGrid::new(2, 4, 10, -1e-3).is_err());
        assert!(SoftStatsGrid::new(2, 4, 10, f64::NAN).is_err());
        let g = SoftStatsGrid::new(2, 4, 10, 1e-9).unwrap();
        assert_eq!(g.n_levels(), 2);
        assert_eq!(g.n_items(), 4);
        assert!((g.tolerance() - 1e-9).abs() < 1e-24);
        assert!(g.dirty_levels().iter().all(|&d| !d));
    }

    #[test]
    fn soft_grid_applies_full_row_on_first_update() {
        let mut g = SoftStatsGrid::new(3, 2, 4, 0.0).unwrap();
        assert!(g.update_action(0, 1, &[0.2, 0.3, 0.5]).unwrap());
        assert!((g.weight(0, 1) - 0.2).abs() < 1e-15);
        assert!((g.weight(1, 1) - 0.3).abs() < 1e-15);
        assert!((g.weight(2, 1) - 0.5).abs() < 1e-15);
        assert!((g.weight(0, 0)).abs() < 1e-15);
        assert!(g.dirty_levels().iter().all(|&d| d));
    }

    #[test]
    fn soft_grid_delta_restores_mass_and_tracks_dirty_levels() {
        let mut g = SoftStatsGrid::new(2, 3, 2, 0.0).unwrap();
        g.update_action(0, 0, &[0.9, 0.1]).unwrap();
        g.update_action(1, 2, &[0.4, 0.6]).unwrap();
        g.clear_dirty();
        // Moving action 0's posterior shifts only item 0's column and
        // flags both levels (each moved).
        assert!(g.update_action(0, 0, &[0.7, 0.3]).unwrap());
        assert!((g.weight(0, 0) - 0.7).abs() < 1e-15);
        assert!((g.weight(1, 0) - 0.3).abs() < 1e-15);
        assert!((g.weight(0, 2) - 0.4).abs() < 1e-15);
        assert!(g.dirty_levels().iter().all(|&d| d));
    }

    #[test]
    fn soft_grid_gates_settled_actions() {
        let mut g = SoftStatsGrid::new(2, 2, 2, 1e-6).unwrap();
        g.update_action(0, 0, &[0.5, 0.5]).unwrap();
        g.clear_dirty();
        // Movement below the gate: skipped, weights and flags untouched.
        assert!(!g.update_action(0, 0, &[0.5 + 1e-9, 0.5 - 1e-9]).unwrap());
        assert!((g.weight(0, 0) - 0.5).abs() < 1e-15);
        assert!(g.dirty_levels().iter().all(|&d| !d));
        // Movement past the gate: applied.
        assert!(g.update_action(0, 0, &[0.6, 0.4]).unwrap());
        assert!((g.weight(0, 0) - 0.6).abs() < 1e-15);
        assert!(g.dirty_levels().iter().all(|&d| d));
    }

    #[test]
    fn soft_grid_rejects_bad_coordinates() {
        let mut g = SoftStatsGrid::new(2, 2, 2, 0.0).unwrap();
        assert!(g.update_action(0, 0, &[1.0]).is_err());
        assert!(g.update_action(0, 9, &[0.5, 0.5]).is_err());
        assert!(g.update_action(7, 0, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn soft_grid_push_action_grows_and_applies_full_mass() {
        let mut g = SoftStatsGrid::new(2, 3, 1, 0.0).unwrap();
        g.update_action(0, 0, &[0.25, 0.75]).unwrap();
        g.clear_dirty();
        assert_eq!(g.n_actions(), 1);
        g.push_action(2, &[0.4, 0.6]).unwrap();
        assert_eq!(g.n_actions(), 2);
        assert!((g.weight(0, 2) - 0.4).abs() < 1e-15);
        assert!((g.weight(1, 2) - 0.6).abs() < 1e-15);
        assert!(g.dirty_levels().iter().all(|&d| d));
        // The appended row is gated like any other on later updates.
        g.clear_dirty();
        assert!(!g.update_action(1, 2, &[0.4, 0.6]).unwrap());
        // Bad coordinates are rejected without growing the grid.
        assert!(g.push_action(9, &[0.5, 0.5]).is_err());
        assert!(g.push_action(0, &[1.0]).is_err());
        assert_eq!(g.n_actions(), 2);
    }

    #[test]
    fn soft_grid_incremental_fit_reuses_clean_levels_bitwise() {
        let ds = build_dataset(4, 12);
        let mut g = SoftStatsGrid::new(3, ds.n_items(), ds.n_actions(), 0.0).unwrap();
        // Seed every action with a level-skewed posterior.
        let mut a_idx = 0usize;
        for seq in ds.sequences() {
            for action in seq.actions() {
                let tilt = (action.item % 3) as usize;
                let mut gamma = vec![0.2, 0.2, 0.2];
                gamma[tilt] += 0.4;
                g.update_action(a_idx, action.item, &gamma).unwrap();
                a_idx += 1;
            }
        }
        let base = g.fit_model_incremental(&ds, 0.01, None).unwrap();
        assert!(g.dirty_levels().iter().all(|&d| !d));
        // Touch only level 1 (zero-based 0): push mass for one action.
        g.push_action(0, &[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(
            g.dirty_levels(),
            &[true, false, false],
            "only the pushed level should be dirty"
        );
        let refit = g.fit_model_incremental(&ds, 0.01, Some(&base)).unwrap();
        // Clean levels are reused bit for bit; the dirty one moved.
        for (features, _) in ds.items().iter().zip(0..) {
            for s in 2..=3u8 {
                assert_eq!(
                    base.item_log_likelihood(features, s).to_bits(),
                    refit.item_log_likelihood(features, s).to_bits()
                );
            }
        }
        // And the dirty level's refit equals a full from-scratch fit.
        let mut fresh = g.clone();
        let scratch = fresh.fit_model_incremental(&ds, 0.01, None).unwrap();
        for (features, _) in ds.items().iter().zip(0..) {
            for s in 1..=3u8 {
                assert_eq!(
                    scratch.item_log_likelihood(features, s).to_bits(),
                    refit.item_log_likelihood(features, s).to_bits()
                );
            }
        }
    }
}
