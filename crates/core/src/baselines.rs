//! Baseline skill models from the paper's evaluation (§VI-D):
//!
//! - **Uniform** — segments each sequence into `S` equal-*length* groups
//!   (by index) and labels the `s`-th group with level `s`. No learning.
//! - **ID** — Yang et al. (2014): the progression model restricted to a
//!   single categorical feature over item IDs. Implemented by projecting
//!   the dataset onto an ID-only schema and running the regular trainer.
//!
//! The projection helpers here also build the `ID+feature` ablations of
//! Table VI.

use crate::error::{CoreError, Result};
use crate::feature::{FeatureSchema, FeatureValue};
use crate::model::SkillModel;
use crate::types::{Dataset, SkillAssignments, SkillLevel};
use crate::update::fit_model;

/// Equal-length (index-based) segmentation of a sequence of length `n` into
/// `n_levels` groups — the Uniform baseline's assignment rule.
pub fn segment_equal_length(n: usize, n_levels: usize) -> Vec<SkillLevel> {
    (0..n)
        .map(|idx| {
            let level = idx * n_levels / n.max(1);
            (level.min(n_levels - 1) + 1) as SkillLevel
        })
        .collect()
}

/// The Uniform baseline: equal-length segmentation of every sequence, plus
/// a model fit from those fixed assignments (used for item prediction).
pub fn uniform_baseline(
    dataset: &Dataset,
    n_levels: usize,
    lambda: f64,
) -> Result<(SkillAssignments, SkillModel)> {
    if n_levels == 0 {
        return Err(CoreError::InvalidSkillCount { requested: 0 });
    }
    let per_user: Vec<Vec<SkillLevel>> = dataset
        .sequences()
        .iter()
        .map(|s| segment_equal_length(s.len(), n_levels))
        .collect();
    let assignments = SkillAssignments { per_user };
    let model = fit_model(dataset, &assignments, n_levels, lambda)?;
    Ok((assignments, model))
}

/// Projects a dataset onto a subset of its features, optionally prepending
/// the item ID as an extra categorical feature.
///
/// - `project_features(ds, &[], true)` — the **ID** baseline's view.
/// - `project_features(ds, &[2], true)` — an **ID+feature** ablation.
/// - `project_features(ds, &(0..F), false)` — identity (sans ID).
pub fn project_features(dataset: &Dataset, keep: &[usize], include_id: bool) -> Result<Dataset> {
    let schema = dataset.schema();
    for &f in keep {
        if f >= schema.len() {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: f,
                len: schema.len(),
            });
        }
    }
    if keep.is_empty() && !include_id {
        return Err(CoreError::FeatureIndexOutOfBounds { index: 0, len: 0 });
    }
    let mut kinds = Vec::with_capacity(keep.len() + usize::from(include_id));
    let mut names = Vec::with_capacity(kinds.capacity());
    if include_id {
        let id_schema = FeatureSchema::id_only(dataset.n_items() as u32)?;
        kinds.push(id_schema.kind(0)?);
        names.push("item id".to_string());
    }
    for &f in keep {
        kinds.push(schema.kind(f)?);
        names.push(schema.name(f));
    }
    let new_schema = FeatureSchema::with_names(kinds, names)?;
    let items: Vec<Vec<FeatureValue>> = dataset
        .items()
        .iter()
        .enumerate()
        .map(|(id, features)| {
            let mut row = Vec::with_capacity(keep.len() + usize::from(include_id));
            if include_id {
                row.push(FeatureValue::Categorical(id as u32));
            }
            for &f in keep {
                row.push(features[f]);
            }
            row
        })
        .collect();
    Dataset::new(new_schema, items, dataset.sequences().to_vec())
}

/// The ID baseline's dataset view: one categorical feature = the item ID.
pub fn to_id_dataset(dataset: &Dataset) -> Result<Dataset> {
    project_features(dataset, &[], true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureKind;
    use crate::types::{Action, ActionSequence};

    fn sample_dataset() -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 3 },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..3u32)
            .map(|c| {
                vec![
                    FeatureValue::Categorical(c),
                    FeatureValue::Count(c as u64 * 2),
                ]
            })
            .collect();
        let seq = ActionSequence::new(
            0,
            (0..6).map(|t| Action::new(t, 0, (t % 3) as u32)).collect(),
        )
        .unwrap();
        Dataset::new(schema, items, vec![seq]).unwrap()
    }

    #[test]
    fn equal_length_segmentation_shapes() {
        assert_eq!(segment_equal_length(6, 3), vec![1, 1, 2, 2, 3, 3]);
        assert_eq!(segment_equal_length(5, 2), vec![1, 1, 1, 2, 2]);
        assert_eq!(segment_equal_length(0, 3), Vec::<SkillLevel>::new());
        assert_eq!(segment_equal_length(1, 4), vec![1]);
        // Monotone and in range for odd shapes.
        for (n, s) in [(7, 3), (10, 4), (3, 5)] {
            let seg = segment_equal_length(n, s);
            assert!(seg.windows(2).all(|w| w[0] <= w[1]));
            assert!(seg.iter().all(|&l| (1..=s as u8).contains(&l)));
        }
    }

    #[test]
    fn uniform_baseline_assignments_are_index_based() {
        let ds = sample_dataset();
        let (assignments, model) = uniform_baseline(&ds, 2, 0.01).unwrap();
        assert_eq!(assignments.per_user[0], vec![1, 1, 1, 2, 2, 2]);
        assert_eq!(model.n_levels(), 2);
        assert!(uniform_baseline(&ds, 0, 0.01).is_err());
    }

    #[test]
    fn id_dataset_has_identity_feature() {
        let ds = sample_dataset();
        let id_ds = to_id_dataset(&ds).unwrap();
        assert_eq!(id_ds.schema().len(), 1);
        assert_eq!(id_ds.n_items(), ds.n_items());
        assert_eq!(id_ds.n_actions(), ds.n_actions());
        for (i, features) in id_ds.items().iter().enumerate() {
            assert_eq!(features[0], FeatureValue::Categorical(i as u32));
        }
    }

    #[test]
    fn projection_keeps_selected_features() {
        let ds = sample_dataset();
        let p = project_features(&ds, &[1], true).unwrap();
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.schema().name(0), "item id");
        // Item 2: ID=2, count=4.
        assert_eq!(
            p.item_features(2),
            &[FeatureValue::Categorical(2), FeatureValue::Count(4)]
        );
        let no_id = project_features(&ds, &[0, 1], false).unwrap();
        assert_eq!(no_id.item_features(1), ds.item_features(1));
    }

    #[test]
    fn projection_validates_inputs() {
        let ds = sample_dataset();
        assert!(project_features(&ds, &[9], true).is_err());
        assert!(project_features(&ds, &[], false).is_err());
    }
}
