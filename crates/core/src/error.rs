//! Error types for the `upskill-core` crate.
//!
//! Library code never panics on user-reachable paths; every fallible public
//! operation returns [`CoreError`] through the [`Result`] alias.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors produced by model construction, training, and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A skill count of zero (or otherwise unusable) was requested.
    InvalidSkillCount {
        /// The offending number of skill levels.
        requested: usize,
    },
    /// An action sequence violated the chronological-order invariant.
    UnsortedSequence {
        /// The user whose sequence is out of order.
        user: u32,
        /// Index of the first out-of-order action.
        position: usize,
    },
    /// An item referenced a feature index outside the schema.
    FeatureIndexOutOfBounds {
        /// Requested feature index.
        index: usize,
        /// Number of features in the schema.
        len: usize,
    },
    /// A feature value did not match the declared feature kind
    /// (e.g. a real value supplied for a categorical feature).
    FeatureKindMismatch {
        /// Feature index at which the mismatch occurred.
        feature: usize,
        /// Human-readable description of the expected kind.
        expected: &'static str,
        /// Human-readable description of the supplied value.
        got: &'static str,
    },
    /// A categorical value was outside the declared cardinality.
    CategoryOutOfBounds {
        /// Feature index.
        feature: usize,
        /// The offending category value.
        value: u32,
        /// Declared number of categories.
        cardinality: u32,
    },
    /// A distribution was asked to fit an empty or degenerate sample.
    DegenerateFit {
        /// Which distribution failed to fit.
        distribution: &'static str,
        /// Why the fit is impossible.
        reason: &'static str,
    },
    /// A dataset passed to training contained no usable actions.
    EmptyDataset,
    /// No user satisfied the initialization length threshold.
    NoInitializationUsers {
        /// The minimum-actions threshold that filtered everyone out.
        threshold: usize,
    },
    /// Numerical routine failed to converge.
    NoConvergence {
        /// Which routine failed.
        routine: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
    /// A probability argument was outside `[0, 1]` or weights were invalid.
    InvalidProbability {
        /// Context for the invalid value.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Mismatched lengths between two paired slices.
    LengthMismatch {
        /// Context describing the two slices.
        context: &'static str,
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// Difficulty was requested for an item that never occurs in the data
    /// (only the assignment-based estimator can fail this way).
    ItemNeverSelected {
        /// The item in question.
        item: u32,
    },
    /// Thread pool configuration was unusable (e.g. zero threads).
    InvalidParallelism {
        /// Requested worker count.
        threads: usize,
    },
    /// A worker thread panicked during a parallel step. The panic payload is
    /// lost at the join boundary; the step name identifies where it happened.
    WorkerPanicked {
        /// Which parallel step lost a worker.
        step: &'static str,
    },
    /// A numeric feature value was outside its kind's domain (NaN or
    /// infinite reals, non-positive values for positive-real features).
    /// Raised at construction and at every ingestion path so invalid
    /// numbers cannot poison the sufficient-statistics accumulators.
    InvalidFeatureValue {
        /// Feature index within the schema.
        feature: usize,
        /// The offending numeric value.
        value: f64,
        /// Why the value is outside the feature's domain.
        reason: &'static str,
    },
    /// A chunked-dataset operation was configured with an unusable chunk
    /// size (chunks must hold at least one user).
    InvalidChunkSize {
        /// The offending users-per-chunk value.
        requested: usize,
    },
    /// A runtime invariant check failed (see [`crate::invariants`]). These
    /// checks run in debug builds and under the `strict-invariants`
    /// feature; a violation means internal state was corrupted (e.g. a
    /// NaN-poisoned emission table or a non-monotone committed path).
    InvariantViolation {
        /// Which invariant check failed.
        check: &'static str,
        /// Human-readable details of the violation.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSkillCount { requested } => {
                write!(f, "invalid skill count {requested}: need at least 1 level")
            }
            CoreError::UnsortedSequence { user, position } => write!(
                f,
                "action sequence for user {user} is not chronologically sorted at index {position}"
            ),
            CoreError::FeatureIndexOutOfBounds { index, len } => {
                write!(f, "feature index {index} out of bounds for schema with {len} features")
            }
            CoreError::FeatureKindMismatch { feature, expected, got } => write!(
                f,
                "feature {feature}: expected a {expected} value but got a {got} value"
            ),
            CoreError::CategoryOutOfBounds { feature, value, cardinality } => write!(
                f,
                "feature {feature}: category {value} out of bounds for cardinality {cardinality}"
            ),
            CoreError::DegenerateFit { distribution, reason } => {
                write!(f, "cannot fit {distribution} distribution: {reason}")
            }
            CoreError::EmptyDataset => write!(f, "dataset contains no actions"),
            CoreError::NoInitializationUsers { threshold } => write!(
                f,
                "no user has at least {threshold} actions; lower the initialization threshold"
            ),
            CoreError::NoConvergence { routine, iterations } => {
                write!(f, "{routine} failed to converge after {iterations} iterations")
            }
            CoreError::InvalidProbability { context, value } => {
                write!(f, "invalid probability in {context}: {value}")
            }
            CoreError::LengthMismatch { context, left, right } => {
                write!(f, "length mismatch in {context}: {left} vs {right}")
            }
            CoreError::ItemNeverSelected { item } => write!(
                f,
                "item {item} never appears in the training actions; use a generation-based estimator"
            ),
            CoreError::InvalidParallelism { threads } => {
                write!(f, "invalid parallelism: {threads} worker threads requested")
            }
            CoreError::WorkerPanicked { step } => {
                write!(f, "a worker thread panicked during the {step} step")
            }
            CoreError::InvalidFeatureValue {
                feature,
                value,
                reason,
            } => {
                write!(f, "feature {feature}: invalid value {value}: {reason}")
            }
            CoreError::InvalidChunkSize { requested } => {
                write!(f, "invalid chunk size {requested}: chunks must hold at least one user")
            }
            CoreError::InvariantViolation { check, detail } => {
                write!(f, "invariant violation in {check}: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::InvalidSkillCount { requested: 0 },
                "skill count 0",
            ),
            (
                CoreError::UnsortedSequence {
                    user: 7,
                    position: 3,
                },
                "user 7",
            ),
            (
                CoreError::FeatureIndexOutOfBounds { index: 5, len: 3 },
                "feature index 5",
            ),
            (CoreError::EmptyDataset, "no actions"),
            (
                CoreError::NoConvergence {
                    routine: "gamma MLE",
                    iterations: 100,
                },
                "gamma MLE",
            ),
            (CoreError::ItemNeverSelected { item: 42 }, "item 42"),
            (
                CoreError::WorkerPanicked { step: "assignment" },
                "assignment",
            ),
            (
                CoreError::InvalidFeatureValue {
                    feature: 2,
                    value: f64::NAN,
                    reason: "positive real features must be finite and > 0",
                },
                "feature 2",
            ),
            (
                CoreError::InvariantViolation {
                    check: "emission table",
                    detail: "NaN at item 3, level 1".to_string(),
                },
                "emission table",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&CoreError::EmptyDataset);
    }
}
