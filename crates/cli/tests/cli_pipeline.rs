//! End-to-end test of the `upskill` binary: generate → stats → train →
//! difficulty → recommend, all through the JSON artifacts.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_upskill"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upskill-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn full_pipeline_runs() {
    let data = tmp("data.json");
    let model = tmp("model.json");
    let assignments = tmp("assignments.json");
    let difficulty = tmp("difficulty.json");

    let out = bin()
        .args([
            "generate",
            "--domain",
            "synthetic",
            "--scale",
            "quick",
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["stats", "--data", data.to_str().unwrap()])
        .output()
        .expect("stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("users:"), "{text}");
    assert!(text.contains("item id"), "{text}");

    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--levels",
            "5",
            "--min-init",
            "40",
            "--out",
            model.to_str().unwrap(),
            "--assignments",
            assignments.to_str().unwrap(),
        ])
        .output()
        .expect("train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists() && assignments.exists());

    let out = bin()
        .args([
            "difficulty",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--assignments",
            assignments.to_str().unwrap(),
            "--method",
            "empirical",
            "--out",
            difficulty.to_str().unwrap(),
        ])
        .output()
        .expect("difficulty");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "recommend",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--difficulty",
            difficulty.to_str().unwrap(),
            "--level",
            "2",
            "--k",
            "3",
        ])
        .output()
        .expect("recommend");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("difficulty"), "{text}");
}

#[test]
fn helpful_errors() {
    let out = bin().output().expect("no args");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = bin().args(["frobnicate"]).output().expect("bad command");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin()
        .args(["generate", "--domain", "nope", "--out", "/tmp/x.json"])
        .output()
        .expect("bad domain");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown domain"));

    let out = bin()
        .args([
            "train",
            "--data",
            "/nonexistent/file.json",
            "--out",
            "/tmp/m.json",
        ])
        .output()
        .expect("missing file");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = bin().args(["help"]).output().expect("help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}

#[test]
fn sweep_selects_a_skill_count() {
    let data = tmp("sweep_data.json");
    let out = bin()
        .args([
            "generate",
            "--domain",
            "synthetic",
            "--scale",
            "quick",
            "--seed",
            "9",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let out = bin()
        .args([
            "sweep",
            "--data",
            data.to_str().unwrap(),
            "--min",
            "2",
            "--max",
            "4",
            "--min-init",
            "30",
        ])
        .output()
        .expect("sweep");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("selected S ="), "{text}");
    // Invalid range errors cleanly.
    let out = bin()
        .args([
            "sweep",
            "--data",
            data.to_str().unwrap(),
            "--min",
            "5",
            "--max",
            "2",
        ])
        .output()
        .expect("sweep bad range");
    assert!(!out.status.success());
}
