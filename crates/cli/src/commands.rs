//! Subcommand implementations.

use std::fs;

use serde::{Deserialize, Serialize};
use upskill_core::bundle::SessionBundle;
use upskill_core::chunked::{train_chunked, AssignmentStorage, ChunkSource};
use upskill_core::difficulty::{assignment_difficulty_all, generation_difficulty_all, SkillPrior};
use upskill_core::parallel::ParallelConfig;
use upskill_core::recommend::{recommend_for_level, RecommendConfig};
use upskill_core::streaming::{RefitPolicy, RefitTuner, StreamingSession};
use upskill_core::train::{train, TrainConfig};
use upskill_core::types::{Action, Dataset, ItemId, SkillAssignments, UserId};
use upskill_core::SkillModel;
use upskill_datasets::chunked::ChunkedSyntheticSource;
use upskill_datasets::DatasetStats;
use upskill_serve::{PredictMode, ServeConfig, SkillService};

use crate::args::Args;
use crate::error::CliError;

const USAGE: &str = "\
usage: upskill <command> [flags]

commands:
  generate    --domain <synthetic|language|cooking|beer|film> [--seed N]
              [--scale quick|default] --out data.json
  stats       --data data.json
  train       --data data.json [--levels S] [--min-init N] [--lambda L]
              --out model.json [--assignments assignments.json]
              | --chunked --users N [--items M] [--levels S] [--mean-len F]
                [--chunk-size K] [--seed N] [--threads T]
                [--storage recompute|inmemory] [--min-init N] [--lambda L]
                [--max-iterations N] --out model.json
  difficulty  --data data.json --model model.json
              [--assignments assignments.json]
              [--method assignment|uniform|empirical] --out difficulty.json
  recommend   --data data.json --model model.json --difficulty difficulty.json
              --level S [--k K]
  evaluate    --data data.json --model model.json --assignments assignments.json
  sweep       --data data.json [--min 2] [--max 8] [--test-frac 0.1] [--seed N]
  ingest      --actions new_actions.json --out model_out.json
              (--session session.json | --data data.json --model model.json
               --assignments assignments.json [--lambda L])
              [--assignments-out a.json] [--data-out d.json]
              [--session-out session_out.json]
  serve-bench [--users N] [--live-users N] [--items M] [--levels S]
              [--ops N] [--threads T] [--shards K] [--refit-every N]
              [--seed N]
  policy-eval --data data.json [--levels S] [--learners N] [--budget N]
              [--threads T] [--seed N] [--min-init N] [--out report.json]
  help        show this message";

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage(format!("no command given\n{USAGE}")));
    };
    let args = Args::parse_with_switches(rest, &["chunked"])?;
    let run = match command.as_str() {
        "generate" => generate,
        "stats" => stats,
        "train" => train_cmd,
        "difficulty" => difficulty,
        "recommend" => recommend,
        "evaluate" => evaluate,
        "sweep" => sweep,
        "ingest" => ingest,
        "serve-bench" => serve_bench,
        "policy-eval" => policy_eval,
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return Ok(());
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown command {other:?}\n{USAGE}"
            )))
        }
    };
    run(&args).map_err(|e| CliError::Command {
        command: command.clone(),
        source: Box::new(e),
    })
}

fn read_json<T: for<'de> Deserialize<'de>>(path: &str) -> Result<T, CliError> {
    let text = fs::read_to_string(path).map_err(|e| CliError::Io {
        op: "read",
        path: path.to_string(),
        source: e,
    })?;
    serde_json::from_str(&text).map_err(|e| CliError::Parse {
        path: path.to_string(),
        detail: e.to_string(),
    })
}

fn write_json<T: Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let text = serde_json::to_string(value).map_err(|e| CliError::Serialize {
        path: path.to_string(),
        detail: e.to_string(),
    })?;
    fs::write(path, text).map_err(|e| CliError::Io {
        op: "write",
        path: path.to_string(),
        source: e,
    })
}

fn generate(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["domain", "seed", "scale", "out"])?;
    let domain = args.required("domain")?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let quick = matches!(args.optional("scale"), Some("quick"));
    let out = args.required("out")?;
    let dataset: Dataset = match domain {
        "synthetic" => {
            let cfg = if quick {
                upskill_datasets::synthetic::SyntheticConfig::scaled(50, false, seed)
            } else {
                upskill_datasets::synthetic::SyntheticConfig::scaled(10, false, seed)
            };
            upskill_datasets::synthetic::generate(&cfg)?.dataset
        }
        "language" => {
            let cfg = if quick {
                upskill_datasets::language::LanguageConfig::test_scale(seed)
            } else {
                upskill_datasets::language::LanguageConfig::default_scale(seed)
            };
            upskill_datasets::language::generate(&cfg)?.dataset
        }
        "cooking" => {
            let cfg = if quick {
                upskill_datasets::cooking::CookingConfig::test_scale(seed)
            } else {
                upskill_datasets::cooking::CookingConfig::default_scale(seed)
            };
            upskill_datasets::cooking::generate(&cfg)?.dataset
        }
        "beer" => {
            let cfg = if quick {
                upskill_datasets::beer::BeerConfig::test_scale(seed)
            } else {
                upskill_datasets::beer::BeerConfig::default_scale(seed)
            };
            upskill_datasets::beer::generate(&cfg)?.dataset
        }
        "film" => {
            let cfg = if quick {
                upskill_datasets::film::FilmConfig::test_scale(seed)
            } else {
                upskill_datasets::film::FilmConfig::default_scale(seed)
            };
            upskill_datasets::film::generate(&cfg)?.dataset
        }
        other => return Err(CliError::Usage(format!("unknown domain {other:?}"))),
    };
    write_json(out, &dataset)?;
    println!(
        "wrote {out}: {} users, {} items, {} actions",
        dataset.n_users(),
        dataset.n_items(),
        dataset.n_actions()
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["data"])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let s = DatasetStats::of("dataset", &dataset);
    println!("users:   {}", s.n_users);
    println!("items:   {}", s.n_items);
    println!("actions: {}", s.n_actions);
    println!("actions/user: {:.2}", s.actions_per_user());
    println!("actions/item: {:.2}", s.actions_per_item());
    println!("features: {}", dataset.schema().len());
    for f in 0..dataset.schema().len() {
        println!("  [{f}] {}", dataset.schema().name(f));
    }
    Ok(())
}

fn train_cmd(args: &Args) -> Result<(), CliError> {
    if args.switch("chunked") {
        return train_chunked_cmd(args);
    }
    args.reject_unknown(&["data", "levels", "min-init", "lambda", "out", "assignments"])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let levels: usize = args.parse_or("levels", 5)?;
    let min_init: usize = args.parse_or("min-init", 50)?;
    let lambda: f64 = args.parse_or("lambda", 0.01)?;
    let out = args.required("out")?;
    let config = TrainConfig::new(levels)
        .with_min_init_actions(min_init)
        .with_lambda(lambda);
    let result = train(&dataset, &config)?;
    write_json(out, &result.model)?;
    println!(
        "trained {levels}-level model in {} iterations (converged: {}), \
         log-likelihood {:.1}; wrote {out}",
        result.trace.len(),
        result.converged,
        result.log_likelihood
    );
    if let Some(path) = args.optional("assignments") {
        write_json(path, &result.assignments)?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `train --chunked`: out-of-core training over the generate-and-fold
/// synthetic stream — the corpus is never materialized, so `--users`
/// can go to a million and beyond with flat memory.
fn train_chunked_cmd(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "chunked",
        "users",
        "items",
        "levels",
        "mean-len",
        "chunk-size",
        "seed",
        "threads",
        "storage",
        "min-init",
        "lambda",
        "max-iterations",
        "out",
    ])?;
    let users: usize = args
        .required("users")?
        .parse()
        .map_err(|_| CliError::Usage("flag --users: cannot parse".into()))?;
    let levels: usize = args.parse_or("levels", 5)?;
    let items: usize = args.parse_or("items", 5_000)?;
    let mean_len: f64 = args.parse_or("mean-len", 50.0)?;
    let chunk_size: usize = args.parse_or("chunk-size", 4096)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let threads: usize = args.parse_or("threads", 1)?;
    let min_init: usize = args.parse_or("min-init", 50)?;
    let lambda: f64 = args.parse_or("lambda", 0.01)?;
    let out = args.required("out")?;
    let storage = match args.optional("storage") {
        None | Some("recompute") => AssignmentStorage::Recompute,
        Some("inmemory") => AssignmentStorage::InMemory,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown storage {other:?} (expected recompute|inmemory)"
            )))
        }
    };
    let synth = upskill_datasets::synthetic::SyntheticConfig {
        n_users: users,
        n_items: items,
        n_levels: levels,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed,
    };
    let source = ChunkedSyntheticSource::new(&synth, chunk_size)?;
    let mut config = TrainConfig::new(levels)
        .with_min_init_actions(min_init)
        .with_lambda(lambda);
    if args.optional("max-iterations").is_some() {
        config = config.with_max_iterations(args.parse_or("max-iterations", 0)?);
    }
    let parallel = if threads > 1 {
        ParallelConfig::all(threads)
    } else {
        ParallelConfig::sequential()
    };
    let result = train_chunked(&source, &config, &parallel, storage)?;
    write_json(out, &result.model)?;
    let total: u64 = result.level_histogram.iter().sum();
    println!(
        "chunked-trained {levels}-level model over {} users / {} actions \
         ({} chunks of {chunk_size}) in {} iterations (converged: {}), \
         log-likelihood {:.1}; wrote {out}",
        result.n_users,
        result.n_actions,
        source.n_chunks(),
        result.trace.len(),
        result.converged,
        result.log_likelihood
    );
    println!("actions per level:");
    for (i, &c) in result.level_histogram.iter().enumerate() {
        let frac = c as f64 / total.max(1) as f64;
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  s={}: {:7} ({:5.1}%) {}", i + 1, c, 100.0 * frac, bar);
    }
    Ok(())
}

fn difficulty(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["data", "model", "assignments", "method", "out"])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let model: SkillModel = read_json(args.required("model")?)?;
    let method = args.optional("method").unwrap_or("empirical");
    let out = args.required("out")?;
    let assignments: Option<SkillAssignments> = match args.optional("assignments") {
        Some(path) => Some(read_json(path)?),
        None => None,
    };
    let values: Vec<Option<f64>> = match method {
        "assignment" => {
            let a = assignments.as_ref().ok_or_else(|| {
                CliError::Usage("--method assignment requires --assignments".into())
            })?;
            assignment_difficulty_all(&dataset, a)?
        }
        "uniform" => generation_difficulty_all(&model, &dataset, SkillPrior::Uniform, None)?
            .into_iter()
            .map(Some)
            .collect(),
        "empirical" => {
            let a = assignments.as_ref().ok_or_else(|| {
                CliError::Usage("--method empirical requires --assignments".into())
            })?;
            generation_difficulty_all(&model, &dataset, SkillPrior::Empirical, Some(a))?
                .into_iter()
                .map(Some)
                .collect()
        }
        other => return Err(CliError::Usage(format!("unknown method {other:?}"))),
    };
    write_json(out, &values)?;
    let known: Vec<f64> = values.iter().flatten().copied().collect();
    let mean = known.iter().sum::<f64>() / known.len().max(1) as f64;
    println!(
        "wrote {out}: {} items ({} estimable), mean difficulty {:.2}",
        values.len(),
        known.len(),
        mean
    );
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["data", "model", "assignments"])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let model: SkillModel = read_json(args.required("model")?)?;
    let assignments: SkillAssignments = read_json(args.required("assignments")?)?;
    let ll = upskill_core::update::log_likelihood(&dataset, &assignments, &model)?;
    let hist = assignments.level_histogram(model.n_levels());
    let total: usize = hist.iter().sum();
    println!(
        "log-likelihood: {ll:.1} ({:.3} per action)",
        ll / total.max(1) as f64
    );
    println!("actions per level:");
    for (i, &c) in hist.iter().enumerate() {
        let frac = c as f64 / total.max(1) as f64;
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  s={}: {:7} ({:5.1}%) {}", i + 1, c, 100.0 * frac, bar);
    }
    // Per-level mean of every non-categorical feature.
    for f in 0..dataset.schema().len() {
        if let Ok(means) = upskill_core::analysis::level_means(&model, f) {
            println!(
                "feature [{f}] {} mean per level: {:?}",
                dataset.schema().name(f),
                means.iter().map(|m| format!("{m:.2}")).collect::<Vec<_>>()
            );
        }
    }
    Ok(())
}

fn sweep(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["data", "min", "max", "test-frac", "seed", "min-init"])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let lo: usize = args.parse_or("min", 2)?;
    let hi: usize = args.parse_or("max", 8)?;
    let frac: f64 = args.parse_or("test-frac", 0.1)?;
    let seed: u64 = args.parse_or("seed", 7)?;
    let min_init: usize = args.parse_or("min-init", 50)?;
    if lo == 0 || hi < lo {
        return Err(CliError::Usage("need 1 <= min <= max".into()));
    }
    let candidates: Vec<usize> = (lo..=hi).collect();
    let base = TrainConfig::new(lo).with_min_init_actions(min_init);
    let sweep = upskill_core::model_selection::sweep_skill_counts(
        &dataset,
        &candidates,
        &base,
        frac,
        seed,
    )?;
    println!("S   held-out LL     per action");
    for c in &sweep {
        println!(
            "{:<3} {:14.1} {:12.4}",
            c.n_levels, c.heldout_ll, c.heldout_ll_per_action
        );
    }
    match upskill_core::model_selection::best_skill_count(&sweep) {
        Some(best) => println!(
            "
selected S = {best}"
        ),
        None => println!(
            "
no candidate evaluated"
        ),
    }
    Ok(())
}

fn ingest(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "session",
        "data",
        "model",
        "assignments",
        "actions",
        "lambda",
        "out",
        "assignments-out",
        "data-out",
        "session-out",
    ])?;
    let actions: Vec<Action> = read_json(args.required("actions")?)?;
    let out = args.required("out")?;

    // Either resume a snapshotted session, or assemble one from a trained
    // model's artifacts (the skill count comes from the model itself).
    let mut session = match args.optional("session") {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| CliError::Io {
                op: "read",
                path: path.to_string(),
                source: e,
            })?;
            SessionBundle::from_json(&text)?.resume()?
        }
        None => {
            let dataset: Dataset = read_json(args.required("data")?)?;
            let model: SkillModel = read_json(args.required("model")?)?;
            let assignments: SkillAssignments = read_json(args.required("assignments")?)?;
            let lambda: f64 = args.parse_or("lambda", 0.01)?;
            let config = TrainConfig::new(model.n_levels()).with_lambda(lambda);
            StreamingSession::new(
                dataset,
                assignments,
                config,
                ParallelConfig::sequential(),
                RefitPolicy::EveryBatch,
            )?
        }
    };

    let levels = session.ingest_batch(&actions)?;
    let ll = upskill_core::update::log_likelihood(
        session.dataset(),
        session.assignments(),
        session.model(),
    )?;

    write_json(out, session.model())?;
    println!(
        "ingested {} actions into {} users ({} total); log-likelihood {:.1}; wrote {out}",
        levels.len(),
        session.n_users(),
        session.dataset().n_actions(),
        ll
    );
    if let Some(path) = args.optional("assignments-out") {
        write_json(path, session.assignments())?;
        println!("wrote {path}");
    }
    if let Some(path) = args.optional("data-out") {
        write_json(path, session.dataset())?;
        println!("wrote {path}");
    }
    if let Some(path) = args.optional("session-out") {
        let bundle = session.snapshot("upskill ingest");
        let text = bundle.to_json()?;
        fs::write(path, text).map_err(|e| CliError::Io {
            op: "write",
            path: path.to_string(),
            source: e,
        })?;
        println!("wrote {path}");
    }
    Ok(())
}

/// SplitMix64 — tiny deterministic traffic generator for `serve-bench`.
struct ServeRng(u64);

impl ServeRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `p`-th percentile (by nearest-rank) of an unsorted latency sample,
/// in seconds.
fn percentile_seconds(samples: &mut [u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1] as f64 / 1e9
}

/// Per-worker latency samples (ingest, predict, recommend), in ns.
type LaneSamples = (Vec<u64>, Vec<u64>, Vec<u64>);

/// `serve-bench`: a scaled-down, in-process twin of the `bench_serve`
/// experiment binary — trains a base model on a synthetic population,
/// puts it behind a concurrent [`SkillService`], and drives a mixed
/// ingest/predict/recommend workload from `--threads` OS threads over
/// disjoint live-user ranges, printing throughput and tail latencies.
fn serve_bench(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "users",
        "live-users",
        "items",
        "levels",
        "ops",
        "threads",
        "shards",
        "refit-every",
        "seed",
    ])?;
    let users: usize = args.parse_or("users", 2_000)?;
    let live_users: usize = args.parse_or("live-users", 5_000)?;
    let items: usize = args.parse_or("items", 2_000)?;
    let levels: usize = args.parse_or("levels", 5)?;
    let ops: u64 = args.parse_or("ops", 100_000u64)?;
    let threads: usize = args.parse_or("threads", 1)?;
    let shards: usize = args.parse_or("shards", 8)?;
    let refit_every: usize = args.parse_or("refit-every", 1_000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    if threads == 0 || live_users < threads {
        return Err(CliError::Usage("need 1 <= threads <= live-users".into()));
    }
    if refit_every == 0 {
        return Err(CliError::Usage("need refit-every >= 1".into()));
    }

    let synth = upskill_datasets::synthetic::SyntheticConfig {
        n_users: users,
        n_items: items,
        n_levels: levels,
        mean_sequence_len: 20.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed,
    };
    let base = upskill_datasets::synthetic::generate(&synth)?;
    let config = TrainConfig::new(levels)
        .with_min_init_actions(10)
        .with_max_iterations(3)
        .with_lambda(0.01);
    let result = train(&base.dataset, &config)?;
    let n_base = base.dataset.n_users();
    // Live traffic may only reference items the trained catalog covers;
    // with sparse synthetic data that can be fewer than `--items`.
    let catalog_items = base.dataset.n_items();
    let service = SkillService::resume(
        base.dataset,
        &result,
        config,
        ParallelConfig::sequential(),
        ServeConfig {
            n_shards: shards,
            policy: RefitPolicy::EveryNActions(refit_every),
            tuner: Some(RefitTuner::new(3, refit_every, 1_000_000)?),
            ..ServeConfig::default()
        },
    )?;
    println!("base model ready: {n_base} users, {catalog_items} items, {levels} levels");

    // Mixed load over disjoint per-thread live-user ranges, all above
    // the base population so per-user time stays monotone without
    // coordination (the base dataset's timestamps are far below 1e9).
    let span = (live_users / threads).max(1) as UserId;
    let ops_per_thread = ops / threads as u64;
    let start = std::time::Instant::now();
    let lanes: Vec<Result<LaneSamples, CliError>> = std::thread::scope(|scope| {
        let service = &service;
        (0..threads)
            .map(|lane| {
                scope.spawn(move || {
                    let lo = n_base as UserId + lane as UserId * span;
                    let hi = lo + span;
                    let mut rng = ServeRng(seed ^ (0xabcd << 16) ^ lane as u64);
                    let mut touched: Vec<UserId> = Vec::new();
                    let mut seen = vec![false; span as usize];
                    let mut clock: i64 = 1_000_000_000;
                    let (mut ih, mut ph, mut rh) = (Vec::new(), Vec::new(), Vec::new());
                    for _ in 0..ops_per_thread {
                        let dice = rng.next() % 100;
                        if dice < 65 || touched.is_empty() {
                            let user = lo + (rng.next() % (hi - lo) as u64) as UserId;
                            let item = (rng.next() % catalog_items as u64) as ItemId;
                            clock += 1;
                            let t0 = std::time::Instant::now();
                            service.ingest(Action::new(clock, user, item))?;
                            ih.push(t0.elapsed().as_nanos() as u64);
                            if !seen[(user - lo) as usize] {
                                seen[(user - lo) as usize] = true;
                                touched.push(user);
                            }
                        } else if dice < 90 {
                            let user = touched[(rng.next() % touched.len() as u64) as usize];
                            let mode = match rng.next() % 20 {
                                0 => PredictMode::Smoothed,
                                1 => PredictMode::Posterior,
                                n if n % 2 == 0 => PredictMode::Committed,
                                _ => PredictMode::Filtered,
                            };
                            let t0 = std::time::Instant::now();
                            service.predict(user, mode)?;
                            ph.push(t0.elapsed().as_nanos() as u64);
                        } else {
                            let user = touched[(rng.next() % touched.len() as u64) as usize];
                            let t0 = std::time::Instant::now();
                            service.recommend(user, Some(10))?;
                            rh.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    Ok((ih, ph, rh))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("serve-bench worker panicked"))
            })
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let (mut ingest_ns, mut predict_ns, mut recommend_ns) = (Vec::new(), Vec::new(), Vec::new());
    for lane in lanes {
        let (ih, ph, rh) = lane?;
        ingest_ns.extend(ih);
        predict_ns.extend(ph);
        recommend_ns.extend(rh);
    }
    let done = (ingest_ns.len() + predict_ns.len() + recommend_ns.len()) as f64;
    let stats = service.stats();
    println!(
        "ops: {done:.0} in {elapsed:.2}s ({:.0} ops/s)",
        done / elapsed
    );
    for (name, ns) in [
        ("ingest", &mut ingest_ns),
        ("predict", &mut predict_ns),
        ("recommend", &mut recommend_ns),
    ] {
        println!(
            "  {name:<9} {:8} ops  p50 {:7.1}us  p95 {:7.1}us  p99 {:7.1}us",
            ns.len(),
            percentile_seconds(ns, 50.0) * 1e6,
            percentile_seconds(ns, 95.0) * 1e6,
            percentile_seconds(ns, 99.0) * 1e6,
        );
    }
    println!(
        "users: {} ({} admitted live); epoch {} after {} refits; policy {:?}",
        stats.n_users,
        stats.n_users - n_base,
        stats.epoch,
        stats.refits,
        stats.policy,
    );
    Ok(())
}

/// `policy-eval`: the closed-loop upskilling comparison from
/// `upskill-eval` on a user-supplied dataset — trains one model, then
/// races two simulated learner arms (static band recommendation vs the
/// adaptive hybrid policy) to the top level and reports actions-to-
/// target medians plus the adaptive-over-static speedup. A scaled-down,
/// file-driven twin of the `bench_policy` experiment binary.
fn policy_eval(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "data", "levels", "learners", "budget", "threads", "seed", "min-init", "out",
    ])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let levels: usize = args.parse_or("levels", 5)?;
    let learners: usize = args.parse_or("learners", 24)?;
    let budget: usize = args.parse_or("budget", 300)?;
    let threads: usize = args.parse_or("threads", 1)?;
    let seed: u64 = args.parse_or("seed", 7)?;
    let min_init: usize = args.parse_or("min-init", 10)?;

    let mut cfg = upskill_eval::upskilling::UpskillEvalConfig::hybrid(levels);
    cfg.n_learners = learners;
    cfg.threads = threads;
    cfg.learner.max_actions = budget;
    cfg.learner.seed = seed;
    cfg.train = TrainConfig::new(levels)
        .with_min_init_actions(min_init)
        .with_max_iterations(3)
        .with_lambda(0.01);
    let report = upskill_eval::upskilling::evaluate_upskilling(&dataset, "cli", &cfg)
        .map_err(|e| CliError::Usage(format!("policy evaluation failed: {e}")))?;

    println!(
        "{} learners per arm, {budget}-action budget, target level {} ({} items):",
        learners, report.target, report.n_items
    );
    for (label, arm) in [
        ("static", &report.static_arm),
        ("adaptive", &report.adaptive_arm),
    ] {
        println!(
            "  {label:<9} median {:6.1}  mean {:6.1}  reached {}/{}",
            arm.median_actions, arm.mean_actions, arm.reached, arm.n_learners
        );
    }
    println!("adaptive-over-static speedup: {:.2}x", report.speedup);
    if let Some(out) = args.optional("out") {
        write_json(out, &report)?;
        println!("wrote {out}");
    }
    Ok(())
}

fn recommend(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["data", "model", "difficulty", "level", "k"])?;
    let dataset: Dataset = read_json(args.required("data")?)?;
    let model: SkillModel = read_json(args.required("model")?)?;
    let difficulty: Vec<Option<f64>> = read_json(args.required("difficulty")?)?;
    let level: u8 = args.parse_or("level", 1)?;
    let k: usize = args.parse_or("k", 10)?;
    let filled: Vec<f64> = difficulty
        .iter()
        .map(|d| d.unwrap_or((1 + model.n_levels()) as f64 / 2.0))
        .collect();
    let config = RecommendConfig {
        k,
        ..RecommendConfig::default()
    };
    let recs = recommend_for_level(&model, &dataset, &filled, level, &|_| false, &config)?;
    if recs.is_empty() {
        println!("no items in the difficulty band for level {level}");
        return Ok(());
    }
    println!(
        "top {} upskilling items for a level-{level} user:",
        recs.len()
    );
    for r in recs {
        println!(
            "  item {:6}  difficulty {:.2}  fit {:.2}  interest {:.2}  score {:.3}",
            r.item, r.difficulty, r.difficulty_fit, r.interest, r.score
        );
    }
    Ok(())
}
