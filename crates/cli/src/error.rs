//! Typed CLI errors.
//!
//! Every failure carries the context a user needs to act on it: the file
//! path for I/O and parse errors, the subcommand name for dispatch
//! failures, and the underlying [`CoreError`] for model-layer rejections.
//! `main` prints these via `Display`, so the rendered messages stay
//! byte-compatible with the old stringly-typed errors where possible.

use std::fmt;
use std::io;

use upskill_core::error::CoreError;
use upskill_serve::ServeError;

/// An error surfaced by the `upskill` command-line tool.
#[derive(Debug)]
pub enum CliError {
    /// Reading or writing a file failed.
    Io {
        /// What we were doing ("read" or "write").
        op: &'static str,
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A JSON artifact failed to deserialize.
    Parse {
        /// The file that failed to parse.
        path: String,
        /// Parser diagnostic.
        detail: String,
    },
    /// An artifact failed to serialize (pre-write).
    Serialize {
        /// The output file the artifact was destined for.
        path: String,
        /// Serializer diagnostic.
        detail: String,
    },
    /// The core library rejected the operation.
    Core(CoreError),
    /// The serving layer rejected the operation.
    Serve(ServeError),
    /// Bad command line: unknown command or flag, missing or unparsable
    /// value. The message includes usage help where appropriate.
    Usage(String),
    /// Wraps a failure with the subcommand it occurred in.
    Command {
        /// The subcommand that failed.
        command: String,
        /// The underlying failure.
        source: Box<CliError>,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { op, path, source } => write!(f, "cannot {op} {path}: {source}"),
            CliError::Parse { path, detail } => write!(f, "cannot parse {path}: {detail}"),
            CliError::Serialize { path, detail } => {
                write!(f, "cannot serialize {path}: {detail}")
            }
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Command { command, source } => write!(f, "{command}: {source}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Core(e) => Some(e),
            CliError::Serve(e) => Some(e),
            CliError::Command { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CliError::Io {
            op: "read",
            path: "data.json".into(),
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        };
        let msg = e.to_string();
        assert!(msg.contains("read"), "{msg}");
        assert!(msg.contains("data.json"), "{msg}");

        let wrapped = CliError::Command {
            command: "train".into(),
            source: Box::new(CliError::Usage("missing required flag --data".into())),
        };
        let msg = wrapped.to_string();
        assert!(msg.starts_with("train: "), "{msg}");
        assert!(msg.contains("--data"), "{msg}");
    }

    #[test]
    fn source_chain_reaches_core_error() {
        use std::error::Error;
        let e = CliError::Command {
            command: "sweep".into(),
            source: Box::new(CliError::Core(CoreError::InvalidSkillCount {
                requested: 0,
            })),
        };
        let inner = e.source().and_then(|s| s.source());
        assert!(inner.is_some());
        assert!(inner.unwrap().to_string().contains("skill"));
    }
}
