//! `upskill` — command-line interface to the upskill workspace.
//!
//! ```text
//! upskill generate --domain <synthetic|language|cooking|beer|film> \
//!                  [--seed N] [--scale quick|default] --out data.json
//! upskill stats     --data data.json
//! upskill train     --data data.json --levels S [--min-init N] \
//!                  --out model.json [--assignments assignments.json]
//! upskill difficulty --data data.json --model model.json \
//!                  [--assignments assignments.json] \
//!                  [--method assignment|uniform|empirical] --out difficulty.json
//! upskill recommend --data data.json --model model.json \
//!                  --difficulty difficulty.json --level S [--k K]
//! upskill ingest    --actions new_actions.json --out model_out.json \
//!                  (--session session.json | --data data.json \
//!                   --model model.json --assignments assignments.json)
//! upskill serve-bench [--users N] [--live-users N] [--items M] [--ops N] \
//!                  [--threads T] [--shards K] [--refit-every N] [--seed N]
//! ```
//!
//! All artifacts are JSON (serde), so models and datasets round-trip
//! between the CLI, the library, and external tooling.

mod args;
mod commands;
mod error;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
