//! Minimal `--flag value` argument parsing (no external dependency; the
//! surface is small enough that clap would be the heaviest crate in the
//! workspace). Bare boolean switches (`--chunked`) are supported through
//! an explicit switch list so `--flag value` pairs stay unambiguous.

use std::collections::HashMap;

use crate::error::CliError;

/// Parsed flags: `--name value` pairs (plus bare switches) after the
/// subcommand.
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `--name value` pairs (rejecting dangling or unknown
    /// shapes), treating any flag named in `switches` as a bare boolean
    /// that takes no value.
    pub fn parse_with_switches(argv: &[String], switches: &[&str]) -> Result<Self, CliError> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::Usage(format!("expected a --flag, got {flag:?}")));
            };
            let value = if switches.contains(&name) {
                "true".to_string()
            } else {
                let Some(value) = it.next() else {
                    return Err(CliError::Usage(format!("flag --{name} is missing a value")));
                };
                value.clone()
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(CliError::Usage(format!("flag --{name} given twice")));
            }
        }
        Ok(Self { flags })
    }

    /// Whether a bare boolean switch was supplied.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{name}: cannot parse {v:?}"))),
        }
    }

    /// Errors if any flag outside `known` was supplied.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), CliError> {
        for name in self.flags.keys() {
            if !known.contains(&name.as_str()) {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse_with_switches(&argv(&["--seed", "7", "--out", "x.json"]), &[]).unwrap();
        assert_eq!(a.required("seed").unwrap(), "7");
        assert_eq!(a.optional("out"), Some("x.json"));
        assert_eq!(a.optional("missing"), None);
        assert_eq!(a.parse_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.parse_or("levels", 5usize).unwrap(), 5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse_with_switches(&argv(&["seed", "7"]), &[]).is_err());
        assert!(Args::parse_with_switches(&argv(&["--seed"]), &[]).is_err());
        assert!(Args::parse_with_switches(&argv(&["--seed", "1", "--seed", "2"]), &[]).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let a = Args::parse_with_switches(&argv(&["--bogus", "1"]), &[]).unwrap();
        assert!(a.reject_unknown(&["seed"]).is_err());
        assert!(a.reject_unknown(&["bogus"]).is_ok());
    }

    #[test]
    fn switches_take_no_value() {
        let a =
            Args::parse_with_switches(&argv(&["--chunked", "--users", "9"]), &["chunked"]).unwrap();
        assert!(a.switch("chunked"));
        assert!(!a.switch("absent"));
        assert_eq!(a.parse_or("users", 0usize).unwrap(), 9);
        // Without the switch list, --chunked would swallow --users.
        let b = Args::parse_with_switches(&argv(&["--chunked", "--users", "9"]), &[]);
        assert!(b.is_err());
    }

    #[test]
    fn parse_or_reports_bad_values() {
        let a = Args::parse_with_switches(&argv(&["--k", "abc"]), &[]).unwrap();
        assert!(a.parse_or("k", 10usize).is_err());
    }
}
