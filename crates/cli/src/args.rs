//! Minimal `--flag value` argument parsing (no external dependency; the
//! surface is small enough that clap would be the heaviest crate in the
//! workspace).

use std::collections::HashMap;

use crate::error::CliError;

/// Parsed flags: `--name value` pairs after the subcommand.
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `--name value` pairs; rejects dangling or unknown shapes.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::Usage(format!("expected a --flag, got {flag:?}")));
            };
            let Some(value) = it.next() else {
                return Err(CliError::Usage(format!("flag --{name} is missing a value")));
            };
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(CliError::Usage(format!("flag --{name} given twice")));
            }
        }
        Ok(Self { flags })
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{name}: cannot parse {v:?}"))),
        }
    }

    /// Errors if any flag outside `known` was supplied.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), CliError> {
        for name in self.flags.keys() {
            if !known.contains(&name.as_str()) {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&argv(&["--seed", "7", "--out", "x.json"])).unwrap();
        assert_eq!(a.required("seed").unwrap(), "7");
        assert_eq!(a.optional("out"), Some("x.json"));
        assert_eq!(a.optional("missing"), None);
        assert_eq!(a.parse_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.parse_or("levels", 5usize).unwrap(), 5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&argv(&["seed", "7"])).is_err());
        assert!(Args::parse(&argv(&["--seed"])).is_err());
        assert!(Args::parse(&argv(&["--seed", "1", "--seed", "2"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let a = Args::parse(&argv(&["--bogus", "1"])).unwrap();
        assert!(a.reject_unknown(&["seed"]).is_err());
        assert!(a.reject_unknown(&["bogus"]).is_ok());
    }

    #[test]
    fn parse_or_reports_bad_values() {
        let a = Args::parse(&argv(&["--k", "abc"])).unwrap();
        assert!(a.parse_or("k", 10usize).is_err());
    }
}
