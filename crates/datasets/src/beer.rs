//! Beer-appreciation domain simulator (stands in for the RateBeer dump;
//! see DESIGN.md §2).
//!
//! Beers carry the paper's feature set: an ID, a brewer, a style, and an
//! alcohol-by-volume value (gamma-modeled). Styles have an "acquired-taste"
//! tier in `1..=5`: pale lagers are tier 1; imperial IPAs, imperial stouts,
//! sour ales, barley wines are tier 4–5. Skilled users drift toward
//! high-tier, high-ABV beers (Fig. 6, Table III; consistent with McAuley &
//! Leskovec's acquired-taste findings the paper cites).
//!
//! Each action also carries a rating in `[0, 5]` for the rating-prediction
//! experiment (Table XII): ratings blend beer quality, user generosity, and
//! a skill/difficulty match bonus, so skill and difficulty features carry
//! real signal for the FFM.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::error::Result;
use upskill_core::feature::{FeatureKind, FeatureValue, PositiveModel};
use upskill_core::types::{Dataset, SkillLevel};

use crate::filtering::{assemble, iterative_support_filter, RawAction, SupportFilter};
use crate::sampling::{sample_categorical, sample_gamma, sample_poisson, sample_zipf};

/// Number of skill levels (the paper follows prior work: S = 5).
pub const BEER_LEVELS: usize = 5;

/// Beer styles: `(name, tier 1..=5, mean ABV)`.
pub const STYLES: &[(&str, u8, f64)] = &[
    ("Pale Lager", 1, 4.8),
    ("Premium Lager", 1, 5.0),
    ("American Dark Lager", 1, 5.2),
    ("Malt Liquor", 1, 6.0),
    ("Vienna", 2, 5.0),
    ("Amber Ale", 2, 5.4),
    ("Wheat Ale", 2, 5.0),
    ("German Hefeweizen", 2, 5.2),
    ("Premium Bitter/ESB", 2, 5.5),
    ("Porter", 3, 6.0),
    ("Stout", 3, 6.5),
    ("Pale Ale", 3, 5.6),
    ("Brown Ale", 3, 5.5),
    ("Pilsener", 2, 5.0),
    ("India Pale Ale (IPA)", 4, 6.8),
    ("Saison", 4, 6.5),
    ("Black IPA", 4, 7.0),
    ("Belgian Strong Ale", 4, 8.5),
    ("Spice/Herb/Vegetable", 4, 6.0),
    ("American Strong Ale", 5, 9.0),
    ("Imperial/Double IPA", 5, 8.8),
    ("Imperial Stout", 5, 10.0),
    ("Sour Ale/Wild Ale", 5, 7.0),
    ("Barley Wine", 5, 10.5),
];

/// Index of each feature in the beer schema.
pub mod features {
    /// Item ID (categorical).
    pub const ID: usize = 0;
    /// Brewer (categorical).
    pub const BREWER: usize = 1;
    /// Style (categorical).
    pub const STYLE: usize = 2;
    /// Alcohol by volume (gamma).
    pub const ABV: usize = 3;
}

/// Configuration for the beer simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeerConfig {
    /// Number of reviewers (pre-filter).
    pub n_users: usize,
    /// Number of beers (pre-filter).
    pub n_beers: usize,
    /// Number of brewers.
    pub n_brewers: usize,
    /// Mean review count per user.
    pub mean_len: f64,
    /// Per-action probability of advancing one skill level.
    pub p_advance: f64,
    /// Support filter applied after generation (the paper used 50/50).
    pub support: SupportFilter,
    /// RNG seed.
    pub seed: u64,
}

impl BeerConfig {
    /// Default scale (~70k actions), roughly 1/25 of Table I (the Beer
    /// dataset is by far the densest; the ratio of actions to users is
    /// preserved at ~140).
    pub fn default_scale(seed: u64) -> Self {
        Self {
            n_users: 500,
            n_beers: 1_800,
            n_brewers: 150,
            mean_len: 150.0,
            p_advance: 0.015,
            support: SupportFilter {
                min_unique_items_per_user: 50,
                min_unique_users_per_item: 10,
            },
            seed,
        }
    }

    /// Small scale for tests (light filtering so data survives).
    pub fn test_scale(seed: u64) -> Self {
        Self {
            n_users: 80,
            n_beers: 150,
            n_brewers: 20,
            mean_len: 60.0,
            p_advance: 0.03,
            support: SupportFilter {
                min_unique_items_per_user: 10,
                min_unique_users_per_item: 3,
            },
            seed,
        }
    }
}

/// The generated beer dataset plus metadata and ratings.
#[derive(Debug, Clone)]
pub struct BeerData {
    /// The assembled dataset (ID, brewer, style, ABV).
    pub dataset: Dataset,
    /// Style names, indexed by the style feature's categorical value.
    pub style_names: Vec<String>,
    /// Acquired-taste tier (1..=5) of each style.
    pub style_tiers: Vec<u8>,
    /// Latent ground-truth skill per action.
    pub true_skills: Vec<Vec<SkillLevel>>,
    /// Rating in `[0, 5]` per action, aligned with the sequences.
    pub ratings: Vec<Vec<f64>>,
}

/// Generates the beer dataset.
pub fn generate(config: &BeerConfig) -> Result<BeerData> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Beers.
    let mut item_features = Vec::with_capacity(config.n_beers);
    let mut beer_style = Vec::with_capacity(config.n_beers);
    let mut beer_quality = Vec::with_capacity(config.n_beers);
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); BEER_LEVELS];
    for id in 0..config.n_beers as u32 {
        let style = sample_zipf(&mut rng, STYLES.len(), 0.7) as u32;
        let (_, tier, mean_abv) = STYLES[style as usize];
        let brewer = sample_zipf(&mut rng, config.n_brewers, 1.0) as u32;
        // ABV around the style mean (shape 30 → tight spread).
        let abv = sample_gamma(&mut rng, 30.0, mean_abv / 30.0).max(0.5);
        item_features.push(vec![
            FeatureValue::Categorical(brewer),
            FeatureValue::Categorical(style),
            FeatureValue::Real(abv),
        ]);
        beer_style.push(style);
        beer_quality.push(3.0 + sample_gamma(&mut rng, 4.0, 0.15) - 0.6);
        pools[tier as usize - 1].push(id);
    }
    // Some tiers could be empty at tiny scales; backfill from neighbours.
    for t in 0..BEER_LEVELS {
        if pools[t].is_empty() {
            let donor = (0..BEER_LEVELS)
                .find(|&d| !pools[d].is_empty())
                .unwrap_or(0);
            let fallback = pools[donor].clone();
            pools[t] = fallback;
        }
    }

    // Users and actions with ratings.
    let mut actions: Vec<RawAction> = Vec::new();
    let mut rating_of: HashMap<(u32, i64), f64> = HashMap::new();
    let mut skill_of: HashMap<(u32, i64), SkillLevel> = HashMap::new();
    for user in 0..config.n_users as u32 {
        let len = sample_poisson(&mut rng, config.mean_len).max(5) as usize;
        let mut level = sample_categorical(&mut rng, &[0.40, 0.25, 0.17, 0.11, 0.07]);
        let generosity = sample_gamma(&mut rng, 9.0, 1.0 / 30.0) - 0.3; // ≈ N(0, 0.1)
        for t in 0..len {
            // Select a tier ≤ level+1, biased toward the current level.
            let mut weights = vec![0.0f64; BEER_LEVELS];
            for (tier, w) in weights.iter_mut().enumerate().take(level + 1) {
                *w = 1.0 + if tier == level { 2.0 } else { 0.0 };
            }
            let tier = sample_categorical(&mut rng, &weights);
            let pool = &pools[tier];
            let item = pool[rng.gen_range(0..pool.len())];
            actions.push((t as i64, user, item));
            // Rating: quality + generosity + match bonus + noise.
            let match_bonus = if tier == level { 0.3 } else { 0.0 };
            let noise = sample_gamma(&mut rng, 4.0, 0.1) - 0.4;
            let rating =
                (beer_quality[item as usize] + generosity + match_bonus + noise).clamp(0.0, 5.0);
            rating_of.insert((user, t as i64), rating);
            skill_of.insert((user, t as i64), (level + 1) as SkillLevel);
            if level + 1 < BEER_LEVELS && rng.gen::<f64>() < config.p_advance {
                level += 1;
            }
        }
    }

    // Filter and assemble.
    let filtered = iterative_support_filter(&actions, config.support);
    let assembled = assemble(
        vec![
            FeatureKind::Categorical {
                cardinality: config.n_brewers as u32,
            },
            FeatureKind::Categorical {
                cardinality: STYLES.len() as u32,
            },
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
        ],
        vec!["brewer".into(), "style".into(), "abv".into()],
        true,
        &item_features,
        &filtered,
    )?;

    // Reattach ratings and true skills through the id remaps.
    let mut ratings = Vec::with_capacity(assembled.dataset.n_users());
    let mut true_skills = Vec::with_capacity(assembled.dataset.n_users());
    for seq in assembled.dataset.sequences() {
        let old_user = assembled.users.new_to_old[seq.user as usize];
        let mut seq_ratings = Vec::with_capacity(seq.len());
        let mut seq_skills = Vec::with_capacity(seq.len());
        for action in seq.actions() {
            seq_ratings.push(rating_of[&(old_user, action.time)]);
            seq_skills.push(skill_of[&(old_user, action.time)]);
        }
        ratings.push(seq_ratings);
        true_skills.push(seq_skills);
    }

    Ok(BeerData {
        dataset: assembled.dataset,
        style_names: STYLES.iter().map(|(n, _, _)| n.to_string()).collect(),
        style_tiers: STYLES.iter().map(|&(_, t, _)| t).collect(),
        true_skills,
        ratings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&BeerConfig::test_scale(5)).unwrap();
        let b = generate(&BeerConfig::test_scale(5)).unwrap();
        assert_eq!(a.dataset.n_actions(), b.dataset.n_actions());
        assert_eq!(a.ratings, b.ratings);
    }

    #[test]
    fn schema_matches_paper_features() {
        let data = generate(&BeerConfig::test_scale(1)).unwrap();
        let schema = data.dataset.schema();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.name(features::ID), "item id");
        assert!(schema.name(features::ABV).contains("abv"));
    }

    #[test]
    fn ratings_aligned_and_bounded() {
        let data = generate(&BeerConfig::test_scale(2)).unwrap();
        assert_eq!(data.ratings.len(), data.dataset.n_users());
        for (seq, ratings) in data.dataset.sequences().iter().zip(&data.ratings) {
            assert_eq!(seq.len(), ratings.len());
            assert!(ratings.iter().all(|&r| (0.0..=5.0).contains(&r)));
        }
    }

    #[test]
    fn skilled_users_drink_higher_abv() {
        let data = generate(&BeerConfig::test_scale(3)).unwrap();
        let mut sums = [0.0f64; BEER_LEVELS];
        let mut counts = [0usize; BEER_LEVELS];
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if let FeatureValue::Real(abv) =
                    data.dataset.item_features(action.item)[features::ABV]
                {
                    sums[s as usize - 1] += abv;
                    counts[s as usize - 1] += 1;
                }
            }
        }
        let mean = |i: usize| sums[i] / counts[i].max(1) as f64;
        // Level 5 (if populated) or level 4 should beat level 1.
        let top = if counts[4] > 20 { 4 } else { 3 };
        assert!(
            mean(top) > mean(0) + 0.3,
            "means {:?} counts {:?}",
            sums,
            counts
        );
    }

    #[test]
    fn users_never_exceed_tier_capacity() {
        let data = generate(&BeerConfig::test_scale(4)).unwrap();
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if let FeatureValue::Categorical(style) =
                    data.dataset.item_features(action.item)[features::STYLE]
                {
                    let tier = data.style_tiers[style as usize];
                    // Tier pools may be backfilled at tiny scales, so allow
                    // slack of one tier.
                    assert!(tier <= s + 1, "tier {tier} above skill {s} (style {style})");
                }
            }
        }
    }

    #[test]
    fn filtering_leaves_dense_data() {
        let data = generate(&BeerConfig::test_scale(6)).unwrap();
        assert!(data.dataset.n_actions() > 0);
        // Every user kept ≥ the unique-item threshold.
        for seq in data.dataset.sequences() {
            let unique: std::collections::HashSet<u32> =
                seq.actions().iter().map(|a| a.item).collect();
            assert!(unique.len() >= 10);
        }
    }
}
