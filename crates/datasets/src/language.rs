//! Language-learning domain simulator (stands in for the NAIST Lang-8
//! corpus; see DESIGN.md §2 for the substitution rationale).
//!
//! Users post articles in the language they are learning; other users
//! correct them. Each article is an item selected exactly once (by its
//! author), so the domain has no usable ID feature — exactly the sparsity
//! regime that motivates multi-faceted features.
//!
//! Skill-dependent structure baked in, matching the paper's findings
//! (§VI-C, Fig. 4, Table II):
//! - **sentence count** — Poisson, roughly flat across skill levels;
//! - **corrections per corrector** — gamma, decreasing with skill
//!   (paper means: 5.06, 4.85, 2.64 for s = 1..3);
//! - **% corrected sentences** — gamma, decreasing with skill;
//! - **dominant correction rule** — categorical; capitalization and
//!   punctuation rules dominate novices, article-usage ("a" → "the") and
//!   bracket-comment rules dominate experts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::error::Result;
use upskill_core::feature::{FeatureKind, FeatureValue, PositiveModel};
use upskill_core::types::{Dataset, SkillLevel};

use crate::filtering::{assemble, RawAction};
use crate::sampling::{sample_categorical, sample_gamma, sample_poisson};

/// Number of skill levels in this domain (the paper selected S = 3).
pub const LANGUAGE_LEVELS: usize = 3;

/// A correction rule with per-level selection weights.
struct Rule {
    name: &'static str,
    /// Weights for levels 1..=3; higher = more typical at that level.
    weights: [f64; 3],
}

/// Novice-dominated, expert-dominated, and neutral correction rules.
/// Names follow the paper's `before -> after` notation with `ε` for
/// insertions/deletions.
const RULES: &[Rule] = &[
    // Novice-typical: capitalization & basic punctuation.
    Rule {
        name: "\"i\" -> \"I\"",
        weights: [9.0, 4.0, 1.0],
    },
    Rule {
        name: "ε -> \"I\"",
        weights: [7.0, 3.5, 1.0],
    },
    Rule {
        name: "\"english\" -> \"English\"",
        weights: [6.0, 3.0, 0.8],
    },
    Rule {
        name: "ε -> \"a\"",
        weights: [6.0, 3.5, 1.2],
    },
    Rule {
        name: "ε -> \".\"",
        weights: [5.5, 3.0, 1.0],
    },
    Rule {
        name: "ε -> \"my\"",
        weights: [4.5, 2.5, 1.0],
    },
    Rule {
        name: "\".\" -> ε",
        weights: [4.5, 2.8, 1.1],
    },
    Rule {
        name: "ε -> \"English\"",
        weights: [4.0, 2.2, 0.9],
    },
    Rule {
        name: "\",\" -> ε",
        weights: [4.0, 2.5, 1.0],
    },
    Rule {
        name: "\"i\" -> ε",
        weights: [3.8, 2.0, 0.8],
    },
    // Expert-typical: articles, prepositions, annotator comments.
    Rule {
        name: "ε -> \"the\"",
        weights: [1.0, 3.0, 8.0],
    },
    Rule {
        name: "ε -> \"(\"",
        weights: [0.6, 2.0, 6.0],
    },
    Rule {
        name: "ε -> \")\"",
        weights: [0.6, 2.0, 6.0],
    },
    Rule {
        name: "\"the\" -> ε",
        weights: [1.0, 2.5, 6.0],
    },
    Rule {
        name: "ε -> \"of\"",
        weights: [0.9, 2.2, 5.0],
    },
    Rule {
        name: "\"of\" -> ε",
        weights: [0.8, 1.8, 4.0],
    },
    Rule {
        name: "ε -> \"[\"",
        weights: [0.5, 1.5, 3.5],
    },
    Rule {
        name: "ε -> \"]\"",
        weights: [0.5, 1.5, 3.5],
    },
    Rule {
        name: "\"a\" -> \"the\"",
        weights: [0.8, 2.0, 4.5],
    },
    Rule {
        name: "ε -> \"/\"",
        weights: [0.4, 1.2, 3.0],
    },
    // Neutral rules: common at every level.
    Rule {
        name: "\"is\" -> \"was\"",
        weights: [3.0, 3.0, 3.0],
    },
    Rule {
        name: "\"go\" -> \"went\"",
        weights: [2.8, 2.8, 2.8],
    },
    Rule {
        name: "\"in\" -> \"on\"",
        weights: [2.5, 2.5, 2.5],
    },
    Rule {
        name: "\"on\" -> \"at\"",
        weights: [2.5, 2.5, 2.5],
    },
    Rule {
        name: "\"very\" -> \"really\"",
        weights: [2.0, 2.0, 2.0],
    },
    Rule {
        name: "\"much\" -> \"many\"",
        weights: [2.0, 2.0, 2.0],
    },
    Rule {
        name: "\"make\" -> \"do\"",
        weights: [1.8, 1.8, 1.8],
    },
    Rule {
        name: "\"say\" -> \"tell\"",
        weights: [1.8, 1.8, 1.8],
    },
    Rule {
        name: "\"fun\" -> \"funny\"",
        weights: [1.5, 1.5, 1.5],
    },
    Rule {
        name: "\"their\" -> \"there\"",
        weights: [1.5, 1.5, 1.5],
    },
];

/// Mean corrections-per-corrector per level (paper Fig. 4b: 5.06, 4.85, 2.64).
const CORRECTION_MEANS: [f64; 3] = [5.06, 4.85, 2.64];
/// Mean fraction of corrected sentences per level.
const PCT_CORRECTED_MEANS: [f64; 3] = [0.80, 0.60, 0.35];
/// Mean sentence count per level (paper Fig. 4a: ~flat).
const SENTENCE_MEANS: [f64; 3] = [10.8, 11.6, 10.3];

/// Configuration for the language simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanguageConfig {
    /// Number of learners.
    pub n_users: usize,
    /// Fraction of "dedicated" users with long posting histories.
    pub dedicated_fraction: f64,
    /// Mean article count for casual users.
    pub casual_mean_len: f64,
    /// Mean article count for dedicated users.
    pub dedicated_mean_len: f64,
    /// Per-article probability that a user's skill advances one level.
    pub p_advance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LanguageConfig {
    /// Default scale (~50k articles), roughly 1/5 of the paper's corpus.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            n_users: 10_000,
            dedicated_fraction: 0.04,
            casual_mean_len: 4.0,
            dedicated_mean_len: 70.0,
            p_advance: 0.04,
            seed,
        }
    }

    /// Small scale for tests.
    pub fn test_scale(seed: u64) -> Self {
        Self {
            n_users: 200,
            dedicated_fraction: 0.2,
            casual_mean_len: 4.0,
            dedicated_mean_len: 60.0,
            p_advance: 0.05,
            seed,
        }
    }
}

/// The generated language dataset plus domain metadata.
#[derive(Debug, Clone)]
pub struct LanguageData {
    /// The assembled dataset
    /// (schema: rule, sentences, corrections/corrector, %corrected).
    pub dataset: Dataset,
    /// Human-readable names of the correction-rule categories.
    pub rule_names: Vec<String>,
    /// Latent ground-truth skill per action (for sanity checks; the paper
    /// has no ground truth in this domain).
    pub true_skills: Vec<Vec<SkillLevel>>,
}

/// Index of each feature in the language schema.
pub mod features {
    /// Dominant correction rule (categorical).
    pub const RULE: usize = 0;
    /// Number of sentences (Poisson).
    pub const SENTENCES: usize = 1;
    /// Mean corrections per corrector (gamma).
    pub const CORRECTIONS: usize = 2;
    /// Fraction of corrected sentences (gamma).
    pub const PCT_CORRECTED: usize = 3;
}

/// Generates the language-learning dataset.
pub fn generate(config: &LanguageConfig) -> Result<LanguageData> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut item_features: Vec<Vec<FeatureValue>> = Vec::new();
    let mut actions: Vec<RawAction> = Vec::new();
    let mut skills_by_user: Vec<Vec<SkillLevel>> = Vec::with_capacity(config.n_users);

    for user in 0..config.n_users as u32 {
        let dedicated = rng.gen::<f64>() < config.dedicated_fraction;
        let mean_len = if dedicated {
            config.dedicated_mean_len
        } else {
            config.casual_mean_len
        };
        let len = sample_poisson(&mut rng, mean_len).max(1) as usize;
        // Learners start low; a few arrive already proficient.
        let mut level = sample_categorical(&mut rng, &[0.7, 0.22, 0.08]); // 0-based
        let mut skills = Vec::with_capacity(len);
        for t in 0..len {
            let rule_weights: Vec<f64> = RULES.iter().map(|r| r.weights[level]).collect();
            let rule = sample_categorical(&mut rng, &rule_weights) as u32;
            let sentences = sample_poisson(&mut rng, SENTENCE_MEANS[level]).max(1);
            let corrections = sample_gamma(&mut rng, 2.0, CORRECTION_MEANS[level] / 2.0).max(1e-3);
            let pct =
                sample_gamma(&mut rng, 4.0, PCT_CORRECTED_MEANS[level] / 4.0).clamp(1e-3, 1.0);
            let article = item_features.len() as u32;
            item_features.push(vec![
                FeatureValue::Categorical(rule),
                FeatureValue::Count(sentences),
                FeatureValue::Real(corrections),
                FeatureValue::Real(pct),
            ]);
            actions.push((t as i64, user, article));
            skills.push((level + 1) as SkillLevel);
            if level + 1 < LANGUAGE_LEVELS && rng.gen::<f64>() < config.p_advance {
                level += 1;
            }
        }
        skills_by_user.push(skills);
    }

    let assembled = assemble(
        vec![
            FeatureKind::Categorical {
                cardinality: RULES.len() as u32,
            },
            FeatureKind::Count,
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
        ],
        vec![
            "correction rule".into(),
            "sentence count".into(),
            "corrections per corrector".into(),
            "pct corrected".into(),
        ],
        false,
        &item_features,
        &actions,
    )?;
    let true_skills: Vec<Vec<SkillLevel>> = assembled
        .users
        .new_to_old
        .iter()
        .map(|&old| skills_by_user[old as usize].clone())
        .collect();
    Ok(LanguageData {
        dataset: assembled.dataset,
        rule_names: RULES.iter().map(|r| r.name.to_string()).collect(),
        true_skills,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_article_selected_exactly_once() {
        let data = generate(&LanguageConfig::test_scale(3)).unwrap();
        assert_eq!(data.dataset.n_items(), data.dataset.n_actions());
        assert!(data.dataset.item_support().iter().all(|&s| s == 1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&LanguageConfig::test_scale(9)).unwrap();
        let b = generate(&LanguageConfig::test_scale(9)).unwrap();
        assert_eq!(a.dataset.n_actions(), b.dataset.n_actions());
        assert_eq!(a.true_skills, b.true_skills);
    }

    #[test]
    fn corrections_decrease_with_true_skill() {
        let data = generate(&LanguageConfig::test_scale(5)).unwrap();
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if let FeatureValue::Real(c) =
                    data.dataset.item_features(action.item)[features::CORRECTIONS]
                {
                    sums[s as usize - 1] += c;
                    counts[s as usize - 1] += 1;
                }
            }
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| s / c.max(1) as f64)
            .collect();
        assert!(counts.iter().all(|&c| c > 10), "counts {counts:?}");
        assert!(means[0] > means[2], "means {means:?}");
    }

    #[test]
    fn novice_rules_dominate_low_skill_actions() {
        let data = generate(&LanguageConfig::test_scale(7)).unwrap();
        // Count rule 0 ("i" -> "I") frequency at level 1 vs level 3.
        let mut counts = [[0usize; 3]; 2]; // [rule0, rule10] × level
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if let FeatureValue::Categorical(r) =
                    data.dataset.item_features(action.item)[features::RULE]
                {
                    if r == 0 {
                        counts[0][s as usize - 1] += 1;
                    } else if r == 10 {
                        counts[1][s as usize - 1] += 1;
                    }
                }
            }
        }
        // Rule 0 (novice) more common at level 1; rule 10 (ε -> "the",
        // expert) more common at level 3.
        assert!(counts[0][0] > counts[0][2], "{counts:?}");
        assert!(counts[1][2] > counts[1][0], "{counts:?}");
    }

    #[test]
    fn some_users_qualify_for_initialization() {
        let data = generate(&LanguageConfig::test_scale(1)).unwrap();
        let long = data
            .dataset
            .sequences()
            .iter()
            .filter(|s| s.len() >= 50)
            .count();
        assert!(long > 0, "need some users with ≥50 articles for init");
    }

    #[test]
    fn schema_matches_feature_indices() {
        let data = generate(&LanguageConfig::test_scale(2)).unwrap();
        let schema = data.dataset.schema();
        assert_eq!(schema.len(), 4);
        assert!(schema.name(features::RULE).contains("rule"));
        assert!(schema.name(features::SENTENCES).contains("sentence"));
        assert_eq!(data.rule_names.len(), RULES.len());
    }
}
