//! Random samplers for the domain simulators.
//!
//! Self-contained implementations over `rand::Rng` (no `rand_distr`
//! dependency): Marsaglia–Tsang gamma, Knuth/normal-approximation Poisson,
//! cumulative categorical, and a Zipf sampler for popularity skews.

use rand::Rng;

/// Draws from a gamma distribution with the given `shape` and `scale`
/// (Marsaglia & Tsang 2000; shape < 1 handled by the boosting trick).
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma parameters must be positive"
    );
    if shape < 1.0 {
        // X ~ Gamma(a+1), U^(1/a) boost.
        let x = sample_gamma(rng, shape + 1.0, 1.0);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return x * u.powf(1.0 / shape) * scale;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Draws from a Poisson distribution with the given `mean`.
///
/// Knuth's product method for small means; normal approximation (rounded,
/// clamped at zero) beyond 30 where Knuth's method underflows/slows.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "poisson mean must be non-negative");
    if upskill_core::float_cmp::is_zero(mean) {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = mean + mean.sqrt() * z;
        x.round().max(0.0) as u64
    }
}

/// Draws an index from unnormalized non-negative weights.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty weight vector");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must have positive finite sum"
    );
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Draws from `0..n` with Zipf(`exponent`) popularity (rank 0 most likely).
pub fn sample_zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, exponent: f64) -> usize {
    assert!(n > 0);
    // Inverse-CDF on the precomputable harmonic sum would need state; for
    // simulator purposes rejection from the continuous envelope is enough.
    let h = |x: f64| -> f64 { x.powf(1.0 - exponent) };
    let h_inv = |x: f64| -> f64 { x.powf(1.0 / (1.0 - exponent)) };
    if (exponent - 1.0).abs() < 1e-9 {
        // Harmonic special case: simple linear scan fallback.
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / k as f64).collect();
        return sample_categorical(rng, &weights);
    }
    let lo = h(1.0);
    let hi = h(n as f64 + 1.0);
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = h_inv(lo + u * (hi - lo));
        let k = x.floor().max(1.0).min(n as f64) as usize;
        // Accept with the ratio of the pmf to the envelope (loose but valid).
        let accept = (k as f64 / x).powf(exponent);
        if rng.gen::<f64>() < accept {
            return k - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_mean_and_variance_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let (shape, scale) = (3.0, 2.0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_gamma(&mut rng, shape, scale))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.6, "var {var}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_small_shape_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_gamma(&mut rng, 0.5, 1.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| sample_poisson(&mut rng, 4.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_large_mean_uses_normal_branch() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, 50.0)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50.0).abs() < 0.3, "mean {mean}");
        assert!((var - 50.0).abs() < 2.0, "var {var}");
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [1.0, 3.0, 6.0];
        let n = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let want = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - want).abs() < 0.01, "cat {i}: {got} vs {want}");
        }
    }

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let n_items = 100;
        let mut counts = vec![0usize; n_items];
        for _ in 0..20_000 {
            let k = sample_zipf(&mut rng, n_items, 1.2);
            assert!(k < n_items);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
        // Harmonic special case also works.
        let k = sample_zipf(&mut rng, 10, 1.0);
        assert!(k < 10);
    }
}
