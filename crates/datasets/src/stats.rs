//! Dataset statistics (Table I of the paper).

use upskill_core::types::Dataset;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users `|U|`.
    pub n_users: usize,
    /// Number of items `|I|`.
    pub n_items: usize,
    /// Number of actions `|A|`.
    pub n_actions: usize,
}

impl DatasetStats {
    /// Computes the row for a dataset.
    pub fn of(name: &str, dataset: &Dataset) -> Self {
        Self {
            name: name.to_string(),
            n_users: dataset.n_users(),
            n_items: dataset.n_items(),
            n_actions: dataset.n_actions(),
        }
    }

    /// Mean actions per user.
    pub fn actions_per_user(&self) -> f64 {
        self.n_actions as f64 / self.n_users.max(1) as f64
    }

    /// Mean actions per item.
    pub fn actions_per_item(&self) -> f64 {
        self.n_actions as f64 / self.n_items.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use upskill_core::types::{Action, ActionSequence};

    #[test]
    fn stats_count_correctly() {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let s0 = ActionSequence::new(0, vec![Action::new(0, 0, 0), Action::new(1, 0, 1)]).unwrap();
        let s1 = ActionSequence::new(1, vec![Action::new(0, 1, 1)]).unwrap();
        let ds = Dataset::new(schema, items, vec![s0, s1]).unwrap();
        let stats = DatasetStats::of("toy", &ds);
        assert_eq!(stats.n_users, 2);
        assert_eq!(stats.n_items, 2);
        assert_eq!(stats.n_actions, 3);
        assert!((stats.actions_per_user() - 1.5).abs() < 1e-12);
        assert!((stats.actions_per_item() - 1.5).abs() < 1e-12);
    }
}
