//! The synthetic dataset generator (paper §VI-A), with ground-truth skill
//! and difficulty levels for the quantitative experiments (Tables VI–IX).
//!
//! Generation procedure, verbatim from the paper:
//!
//! 1. Three per-level feature distributions: a categorical whose mass
//!    concentrates on the value congruent to the level (mod `S`), and gamma
//!    and Poisson distributions whose means grow with the level.
//! 2. The same number of items per level; an item's three features are
//!    drawn from its level's distributions; its true difficulty is the
//!    level.
//! 3. Per user: sequence length ~ Poisson(50); initial skill uniform over
//!    `1..=S`; each action picks an item at the current level with
//!    probability `p_at_level = 0.5` and from strictly easier pools
//!    otherwise; an at-level selection advances the skill with
//!    `p_advance = 0.1`.
//!
//! The schema is `[item id, categorical, abv-like gamma, step-like
//! Poisson]`, so [`upskill_core::baselines::project_features`] produces the
//! `ID`, `ID+categorical`, `ID+gamma`, `ID+Poisson`, and `Multi-faceted`
//! model variants of Table VI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::error::Result;
use upskill_core::feature::{FeatureKind, FeatureValue, PositiveModel};
use upskill_core::types::{Dataset, SkillLevel};

use crate::filtering::{assemble, RawAction};
use crate::sampling::{sample_categorical, sample_gamma, sample_poisson};

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: usize,
    /// Total number of items (split evenly across levels).
    pub n_items: usize,
    /// Number of skill levels `S`.
    pub n_levels: usize,
    /// Mean sequence length (Poisson).
    pub mean_sequence_len: f64,
    /// Probability of selecting an item at the current level.
    pub p_at_level: f64,
    /// Probability of advancing after an at-level selection.
    pub p_advance: f64,
    /// Number of categories in the categorical feature.
    pub n_categories: u32,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's Synthetic dataset: 10,000 users, 50,000 items, S = 5.
    pub fn paper(seed: u64) -> Self {
        Self {
            n_users: 10_000,
            n_items: 50_000,
            n_levels: 5,
            mean_sequence_len: 50.0,
            p_at_level: 0.5,
            p_advance: 0.1,
            n_categories: 10,
            seed,
        }
    }

    /// The paper's Synthetic_dense variant: identical except 10,000 items.
    pub fn paper_dense(seed: u64) -> Self {
        Self {
            n_items: 10_000,
            ..Self::paper(seed)
        }
    }

    /// A scaled-down configuration for fast experiments/tests: sizes divide
    /// the paper's by `factor` (sparse/dense item ratio preserved).
    pub fn scaled(factor: usize, dense: bool, seed: u64) -> Self {
        let base = if dense {
            Self::paper_dense(seed)
        } else {
            Self::paper(seed)
        };
        Self {
            n_users: (base.n_users / factor).max(10),
            n_items: (base.n_items / factor).max(base.n_levels * 2),
            ..base
        }
    }
}

/// A generated dataset plus its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticData {
    /// The assembled dataset (schema: id, categorical, gamma, Poisson).
    pub dataset: Dataset,
    /// Ground-truth skill level per action, aligned with
    /// `dataset.sequences()[u].actions()[n]`.
    pub true_skills: Vec<Vec<SkillLevel>>,
    /// Ground-truth difficulty per (compact) item id.
    pub true_difficulty: Vec<f64>,
}

impl SyntheticData {
    /// Flattened ground-truth skills in action order (for correlations).
    pub fn flat_true_skills(&self) -> Vec<f64> {
        self.true_skills
            .iter()
            .flat_map(|s| s.iter().map(|&x| x as f64))
            .collect()
    }
}

/// Per-level generative parameters for item features.
fn level_params(level: usize, n_levels: usize, n_categories: u32) -> LevelParams {
    // Categorical mass concentrated on value ≡ level (mod C); gamma and
    // Poisson means grow with the level so features are informative.
    let mut weights = vec![1.0f64; n_categories as usize];
    weights[level % n_categories as usize] = 1.0 + 2.0 * n_categories as f64 / n_levels as f64;
    // Neighbouring levels overlap slightly — the task should be learnable
    // but not trivial, mirroring the paper's moderate baseline accuracy.
    weights[(level + 1) % n_categories as usize] += 1.0;
    LevelParams {
        cat_weights: weights,
        gamma_shape: 2.0 + level as f64,
        gamma_scale: 1.0 + 0.5 * level as f64,
        poisson_mean: 3.0 + 4.0 * level as f64,
    }
}

struct LevelParams {
    cat_weights: Vec<f64>,
    gamma_shape: f64,
    gamma_scale: f64,
    poisson_mean: f64,
}

/// Crate-internal tuple view of [`level_params`] for the generate-and-fold
/// chunked source: `(categorical weights, gamma shape, gamma scale,
/// Poisson mean)`. Same distributions, so chunked and in-memory corpora
/// share item statistics.
pub(crate) fn chunked_level_params(
    level: usize,
    n_levels: usize,
    n_categories: u32,
) -> (Vec<f64>, f64, f64, f64) {
    let p = level_params(level, n_levels, n_categories);
    (p.cat_weights, p.gamma_shape, p.gamma_scale, p.poisson_mean)
}

/// Generates the synthetic dataset with ground truth.
pub fn generate(config: &SyntheticConfig) -> Result<SyntheticData> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let s_max = config.n_levels;
    let params: Vec<LevelParams> = (0..s_max)
        .map(|l| level_params(l, s_max, config.n_categories))
        .collect();

    // Step 1–2: items, evenly split across levels.
    let per_level = config.n_items / s_max;
    let n_items = per_level * s_max;
    let mut features: Vec<Vec<FeatureValue>> = Vec::with_capacity(n_items);
    let mut difficulty: Vec<f64> = Vec::with_capacity(n_items);
    let mut pools: Vec<Vec<u32>> = vec![Vec::with_capacity(per_level); s_max];
    for level in 0..s_max {
        let p = &params[level];
        for _ in 0..per_level {
            let id = features.len() as u32;
            let cat = sample_categorical(&mut rng, &p.cat_weights) as u32;
            let g = sample_gamma(&mut rng, p.gamma_shape, p.gamma_scale).max(1e-6);
            let k = sample_poisson(&mut rng, p.poisson_mean);
            features.push(vec![
                FeatureValue::Categorical(cat),
                FeatureValue::Real(g),
                FeatureValue::Count(k),
            ]);
            difficulty.push((level + 1) as f64);
            pools[level].push(id);
        }
    }

    // Step 3: user sequences with latent skill progression.
    let mut actions: Vec<RawAction> = Vec::new();
    let mut skills_by_user: Vec<Vec<SkillLevel>> = Vec::with_capacity(config.n_users);
    for user in 0..config.n_users as u32 {
        let len = sample_poisson(&mut rng, config.mean_sequence_len).max(1) as usize;
        let mut skill = rng.gen_range(0..s_max); // 0-based level
        let mut skills = Vec::with_capacity(len);
        for t in 0..len {
            let at_level = skill == 0 || rng.gen::<f64>() < config.p_at_level;
            let pool_level = if at_level {
                skill
            } else {
                rng.gen_range(0..skill)
            };
            let item = pools[pool_level][rng.gen_range(0..per_level)];
            actions.push((t as i64, user, item));
            skills.push((skill + 1) as SkillLevel);
            if at_level && skill + 1 < s_max && rng.gen::<f64>() < config.p_advance {
                skill += 1;
            }
        }
        skills_by_user.push(skills);
    }

    // Assemble with the ID feature prepended. Item ids are dense and all
    // may not be selected; remap ground truth through the compaction.
    let assembled = assemble(
        vec![
            FeatureKind::Categorical {
                cardinality: config.n_categories,
            },
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
            FeatureKind::Count,
        ],
        vec!["categorical".into(), "gamma".into(), "poisson".into()],
        true,
        &features,
        &actions,
    )?;
    let true_difficulty: Vec<f64> = assembled
        .items
        .new_to_old
        .iter()
        .map(|&old| difficulty[old as usize])
        .collect();
    let true_skills: Vec<Vec<SkillLevel>> = assembled
        .users
        .new_to_old
        .iter()
        .map(|&old| skills_by_user[old as usize].clone())
        .collect();
    Ok(SyntheticData {
        dataset: assembled.dataset,
        true_skills,
        true_difficulty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_users: 60,
            n_items: 200,
            n_levels: 5,
            mean_sequence_len: 30.0,
            p_at_level: 0.5,
            p_advance: 0.1,
            n_categories: 10,
            seed: 11,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.dataset.n_actions(), b.dataset.n_actions());
        assert_eq!(a.true_difficulty, b.true_difficulty);
        assert_eq!(a.true_skills, b.true_skills);
    }

    #[test]
    fn ground_truth_aligns_with_dataset() {
        let data = generate(&small_config()).unwrap();
        assert_eq!(data.true_skills.len(), data.dataset.n_users());
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            assert_eq!(seq.len(), skills.len());
            // True skills are monotone by construction.
            assert!(skills.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(data.true_difficulty.len(), data.dataset.n_items());
    }

    #[test]
    fn users_select_within_capacity() {
        let data = generate(&small_config()).unwrap();
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &skill) in seq.actions().iter().zip(skills) {
                let d = data.true_difficulty[action.item as usize];
                assert!(
                    d <= skill as f64 + 1e-9,
                    "difficulty {d} above skill {skill}"
                );
            }
        }
    }

    #[test]
    fn feature_means_grow_with_difficulty() {
        let data = generate(&small_config()).unwrap();
        // Mean Poisson feature of level-5 items should exceed level-1 items.
        let mean_count = |level: f64| -> f64 {
            let vals: Vec<f64> = data
                .dataset
                .items()
                .iter()
                .zip(&data.true_difficulty)
                .filter(|(_, &d)| d == level)
                .map(|(f, _)| match f[3] {
                    FeatureValue::Count(k) => k as f64,
                    _ => panic!("expected count"),
                })
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_count(5.0) > mean_count(1.0) + 5.0);
    }

    #[test]
    fn schema_has_id_plus_three_features() {
        let data = generate(&small_config()).unwrap();
        assert_eq!(data.dataset.schema().len(), 4);
        assert_eq!(data.dataset.schema().name(0), "item id");
    }

    #[test]
    fn sequence_lengths_near_mean() {
        let data = generate(&small_config()).unwrap();
        let total: usize = data.dataset.sequences().iter().map(|s| s.len()).sum();
        let mean = total as f64 / data.dataset.n_users() as f64;
        assert!((mean - 30.0).abs() < 3.0, "mean length {mean}");
    }

    #[test]
    fn dense_config_reduces_items_only() {
        let sparse = SyntheticConfig::paper(1);
        let dense = SyntheticConfig::paper_dense(1);
        assert_eq!(sparse.n_users, dense.n_users);
        assert_eq!(dense.n_items, 10_000);
        assert_eq!(sparse.n_items, 50_000);
        let scaled = SyntheticConfig::scaled(10, false, 1);
        assert_eq!(scaled.n_users, 1000);
        assert_eq!(scaled.n_items, 5000);
    }
}
