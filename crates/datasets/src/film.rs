//! Film domain simulator (stands in for MovieLens + the authors' crawl;
//! see DESIGN.md §2).
//!
//! Movies carry an ID, genres, a director, and a lead actor, plus a release
//! year used only by the preprocessing step. Three latent movie classes:
//!
//! - **blockbusters** — light, widely appealing; low appreciation tier;
//! - **classics** — older, acclaimed; high appreciation tier;
//! - **regulars** — in between.
//!
//! The simulator reproduces the paper's *lastness effect* (§VI-C): users
//! prefer recently released movies, so release year correlates with action
//! time, and the uniform-time initialization mistakes temporal drift for
//! skill (Table IV). The fix — dropping movies released after the earliest
//! action so every movie is selectable at any time — is applied when
//! [`FilmConfig::apply_lastness_fix`] is set (Table V).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::error::Result;
use upskill_core::feature::{FeatureKind, FeatureValue};
use upskill_core::types::{Dataset, SkillLevel};

use crate::filtering::{
    assemble, filter_items, iterative_support_filter, RawAction, SupportFilter,
};
use crate::sampling::{sample_categorical, sample_poisson, sample_zipf};

/// Number of skill levels (the paper follows prior work: S = 5).
pub const FILM_LEVELS: usize = 5;

/// Genre vocabulary.
pub const GENRES: &[&str] = &[
    "Action",
    "Adventure",
    "Sci-Fi",
    "Fantasy",
    "Comedy",
    "Romance",
    "Drama",
    "Thriller",
    "Crime",
    "Mystery",
    "Horror",
    "War",
    "Western",
    "Film-Noir",
    "Musical",
    "Documentary",
    "Animation",
    "Family",
];

/// Latent movie class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovieClass {
    /// Light, widely appealing; favoured by novices.
    Blockbuster,
    /// Acclaimed, demanding; favoured by skilled viewers.
    Classic,
    /// Everything else.
    Regular,
}

/// Index of each feature in the film schema.
pub mod features {
    /// Item ID (categorical).
    pub const ID: usize = 0;
    /// Primary genre (categorical).
    pub const GENRE: usize = 1;
    /// Director (categorical).
    pub const DIRECTOR: usize = 2;
    /// Lead actor (categorical).
    pub const ACTOR: usize = 3;
}

/// Configuration for the film simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilmConfig {
    /// Number of viewers (pre-filter).
    pub n_users: usize,
    /// Number of movies (pre-filter).
    pub n_movies: usize,
    /// Number of directors.
    pub n_directors: usize,
    /// Number of actors.
    pub n_actors: usize,
    /// Mean review count per user.
    pub mean_len: f64,
    /// Observation window in days (action timestamps fall in `0..window`).
    pub window_days: i64,
    /// Release years span `first_year ..= first_year + year_span`; the
    /// observation window covers the last `observed_years` of it.
    pub first_year: i32,
    /// Total span of release years.
    pub year_span: i32,
    /// Years of the span covered by the observation window.
    pub observed_years: i32,
    /// Strength of the preference for recently released movies (days).
    pub lastness_tau: f64,
    /// Per-action probability of advancing one skill level.
    pub p_advance: f64,
    /// Apply the §VI-C preprocessing (drop movies released after the
    /// earliest action).
    pub apply_lastness_fix: bool,
    /// Support filter applied after generation.
    pub support: SupportFilter,
    /// RNG seed.
    pub seed: u64,
}

impl FilmConfig {
    /// Default scale (~150k actions), roughly 1/50 of Table I with the
    /// actions-per-user ratio (~100) preserved.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            n_users: 1_500,
            n_movies: 900,
            n_directors: 120,
            n_actors: 240,
            mean_len: 100.0,
            window_days: 16 * 365,
            first_year: 1930,
            year_span: 84,
            observed_years: 16,
            lastness_tau: 700.0,
            p_advance: 0.02,
            apply_lastness_fix: false,
            support: SupportFilter {
                min_unique_items_per_user: 50,
                min_unique_users_per_item: 20,
            },
            seed,
        }
    }

    /// Small scale for tests.
    pub fn test_scale(seed: u64) -> Self {
        Self {
            n_users: 100,
            n_movies: 120,
            n_directors: 25,
            n_actors: 40,
            mean_len: 60.0,
            window_days: 8 * 365,
            first_year: 1940,
            year_span: 74,
            observed_years: 8,
            lastness_tau: 1000.0,
            p_advance: 0.03,
            apply_lastness_fix: false,
            support: SupportFilter {
                min_unique_items_per_user: 10,
                min_unique_users_per_item: 3,
            },
            seed,
        }
    }
}

/// The generated film dataset plus metadata.
#[derive(Debug, Clone)]
pub struct FilmData {
    /// The assembled dataset (ID, genre, director, actor).
    pub dataset: Dataset,
    /// Movie title per compact item id.
    pub titles: Vec<String>,
    /// Release year per compact item id.
    pub release_years: Vec<i32>,
    /// Latent class per compact item id.
    pub classes: Vec<MovieClass>,
    /// Latent ground-truth skill per action.
    pub true_skills: Vec<Vec<SkillLevel>>,
}

/// Generates the film dataset.
pub fn generate(config: &FilmConfig) -> Result<FilmData> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let days_per_year = 365i64;
    let window_start_year = config.first_year + config.year_span - config.observed_years;

    // Movies.
    let mut item_features = Vec::with_capacity(config.n_movies);
    let mut titles = Vec::with_capacity(config.n_movies);
    let mut years = Vec::with_capacity(config.n_movies);
    let mut classes = Vec::with_capacity(config.n_movies);
    // Release day relative to the observation window start (may be ≤ 0 for
    // movies released before the window opens).
    let mut release_day = Vec::with_capacity(config.n_movies);
    for id in 0..config.n_movies {
        // Half the catalogue is released inside the observation window —
        // real movie platforms skew heavily recent, which is what makes
        // the lastness effect dominate the raw data (§VI-C).
        let year = if rng.gen::<f64>() < 0.5 {
            window_start_year + rng.gen_range(0..=config.observed_years)
        } else {
            config.first_year + rng.gen_range(0..=config.year_span)
        };
        let age = (config.first_year + config.year_span - year) as f64 / config.year_span as f64; // 1 = oldest
                                                                                                  // Old movies are more likely to be classics, new ones blockbusters.
        let p_classic = 0.05 + 0.35 * age;
        let p_blockbuster = 0.05 + 0.35 * (1.0 - age);
        let roll: f64 = rng.gen();
        let class = if roll < p_classic {
            MovieClass::Classic
        } else if roll < p_classic + p_blockbuster {
            MovieClass::Blockbuster
        } else {
            MovieClass::Regular
        };
        let genre = match class {
            // Classics skew Drama/Film-Noir/Mystery; blockbusters skew
            // Action/Adventure/Sci-Fi.
            MovieClass::Classic => *[6usize, 13, 9, 5, 14]
                .get(rng.gen_range(0..5))
                .unwrap_or(&6),
            MovieClass::Blockbuster => {
                *[0usize, 1, 2, 3, 16].get(rng.gen_range(0..5)).unwrap_or(&0)
            }
            MovieClass::Regular => sample_zipf(&mut rng, GENRES.len(), 0.8),
        } as u32;
        let director = sample_zipf(&mut rng, config.n_directors, 1.0) as u32;
        let actor = sample_zipf(&mut rng, config.n_actors, 1.0) as u32;
        item_features.push(vec![
            FeatureValue::Categorical(genre),
            FeatureValue::Categorical(director),
            FeatureValue::Categorical(actor),
        ]);
        let label = match class {
            MovieClass::Classic => "Classic",
            MovieClass::Blockbuster => "Blockbuster",
            MovieClass::Regular => "Feature",
        };
        titles.push(format!(
            "{} {} #{} ({})",
            GENRES[genre as usize], label, id, year
        ));
        years.push(year);
        classes.push(class);
        release_day.push(((year - window_start_year) as i64) * days_per_year);
    }

    // Class appeal per skill level: novices → blockbusters, experts → classics.
    let class_weight = |class: MovieClass, level: usize| -> f64 {
        let x = level as f64 / (FILM_LEVELS - 1) as f64; // 0 novice → 1 expert
        match class {
            MovieClass::Blockbuster => 3.0 * (1.0 - x) + 0.3,
            MovieClass::Classic => 3.0 * x + 0.3,
            MovieClass::Regular => 1.2,
        }
    };

    // Users.
    let mut actions: Vec<RawAction> = Vec::new();
    let mut skill_of: HashMap<(u32, i64), SkillLevel> = HashMap::new();
    let n_candidates = 40usize.min(config.n_movies);
    for user in 0..config.n_users as u32 {
        let len = sample_poisson(&mut rng, config.mean_len).max(5) as usize;
        let mut level = sample_categorical(&mut rng, &[0.35, 0.25, 0.18, 0.13, 0.09]);
        // Action times spread over the window, sorted.
        let mut times: Vec<i64> = (0..len)
            .map(|_| rng.gen_range(0..config.window_days))
            .collect();
        times.sort_unstable();
        times.dedup();
        for &t in &times {
            // Candidate set, then lastness × class weighting.
            let mut best_item = None;
            let mut weights = Vec::with_capacity(n_candidates);
            let mut candidates = Vec::with_capacity(n_candidates);
            for _ in 0..n_candidates {
                let m = rng.gen_range(0..config.n_movies);
                if release_day[m] > t {
                    continue; // not yet released at action time
                }
                let recency = (-((t - release_day[m]) as f64) / config.lastness_tau).exp();
                let w = (0.08 + 8.0 * recency) * class_weight(classes[m], level);
                candidates.push(m);
                weights.push(w);
            }
            if candidates.is_empty() {
                // Extremely early action; pick any already-released movie.
                if let Some(m) = (0..config.n_movies).find(|&m| release_day[m] <= t) {
                    best_item = Some(m);
                }
            } else {
                best_item = Some(candidates[sample_categorical(&mut rng, &weights)]);
            }
            let Some(item) = best_item else { continue };
            actions.push((t, user, item as u32));
            skill_of.insert((user, t), (level + 1) as SkillLevel);
            if level + 1 < FILM_LEVELS && rng.gen::<f64>() < config.p_advance {
                level += 1;
            }
        }
    }

    // Optional lastness preprocessing: keep only movies released no later
    // than the earliest action in the data.
    let preprocessed = if config.apply_lastness_fix {
        let earliest = actions.iter().map(|&(t, _, _)| t).min().unwrap_or(0);
        filter_items(&actions, |i| release_day[i as usize] <= earliest)
    } else {
        actions
    };
    let filtered = iterative_support_filter(&preprocessed, config.support);
    let assembled = assemble(
        vec![
            FeatureKind::Categorical {
                cardinality: GENRES.len() as u32,
            },
            FeatureKind::Categorical {
                cardinality: config.n_directors as u32,
            },
            FeatureKind::Categorical {
                cardinality: config.n_actors as u32,
            },
        ],
        vec!["genre".into(), "director".into(), "actor".into()],
        true,
        &item_features,
        &filtered,
    )?;

    let remap = |old: u32| old as usize;
    let compact_titles: Vec<String> = assembled
        .items
        .new_to_old
        .iter()
        .map(|&o| titles[remap(o)].clone())
        .collect();
    let compact_years: Vec<i32> = assembled
        .items
        .new_to_old
        .iter()
        .map(|&o| years[remap(o)])
        .collect();
    let compact_classes: Vec<MovieClass> = assembled
        .items
        .new_to_old
        .iter()
        .map(|&o| classes[remap(o)])
        .collect();
    let mut true_skills = Vec::with_capacity(assembled.dataset.n_users());
    for seq in assembled.dataset.sequences() {
        let old_user = assembled.users.new_to_old[seq.user as usize];
        true_skills.push(
            seq.actions()
                .iter()
                .map(|a| skill_of[&(old_user, a.time)])
                .collect(),
        );
    }

    Ok(FilmData {
        dataset: assembled.dataset,
        titles: compact_titles,
        release_years: compact_years,
        classes: compact_classes,
        true_skills,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&FilmConfig::test_scale(7)).unwrap();
        let b = generate(&FilmConfig::test_scale(7)).unwrap();
        assert_eq!(a.dataset.n_actions(), b.dataset.n_actions());
        assert_eq!(a.titles, b.titles);
    }

    #[test]
    fn schema_matches_paper_features() {
        let data = generate(&FilmConfig::test_scale(1)).unwrap();
        let schema = data.dataset.schema();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.name(features::ID), "item id");
        assert!(schema.name(features::GENRE).contains("genre"));
    }

    #[test]
    fn metadata_aligned_with_items() {
        let data = generate(&FilmConfig::test_scale(2)).unwrap();
        assert_eq!(data.titles.len(), data.dataset.n_items());
        assert_eq!(data.release_years.len(), data.dataset.n_items());
        assert_eq!(data.classes.len(), data.dataset.n_items());
    }

    #[test]
    fn lastness_effect_present_without_fix() {
        // Later actions should select more recently released movies.
        let data = generate(&FilmConfig::test_scale(3)).unwrap();
        let mut early_years = Vec::new();
        let mut late_years = Vec::new();
        let window = FilmConfig::test_scale(3).window_days;
        for seq in data.dataset.sequences() {
            for a in seq.actions() {
                let y = data.release_years[a.item as usize];
                if a.time < window / 4 {
                    early_years.push(y as f64);
                } else if a.time > 3 * window / 4 {
                    late_years.push(y as f64);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&late_years) > mean(&early_years) + 1.0,
            "early {} late {}",
            mean(&early_years),
            mean(&late_years)
        );
    }

    #[test]
    fn fix_removes_late_releases() {
        let mut cfg = FilmConfig::test_scale(4);
        cfg.apply_lastness_fix = true;
        let data = generate(&cfg).unwrap();
        let earliest_action = data.dataset.actions().map(|a| a.time).min().unwrap_or(0);
        let window_start_year = cfg.first_year + cfg.year_span - cfg.observed_years;
        for (&year, title) in data.release_years.iter().zip(&data.titles) {
            let release_day = ((year - window_start_year) as i64) * 365;
            assert!(
                release_day <= earliest_action,
                "{title} released after the earliest action"
            );
        }
    }

    #[test]
    fn skilled_users_prefer_classics() {
        let data = generate(&FilmConfig::test_scale(5)).unwrap();
        let mut classic_by_level = [0usize; FILM_LEVELS];
        let mut total_by_level = [0usize; FILM_LEVELS];
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (a, &s) in seq.actions().iter().zip(skills) {
                total_by_level[s as usize - 1] += 1;
                if data.classes[a.item as usize] == MovieClass::Classic {
                    classic_by_level[s as usize - 1] += 1;
                }
            }
        }
        let frac = |i: usize| classic_by_level[i] as f64 / total_by_level[i].max(1) as f64;
        let top = (0..FILM_LEVELS)
            .rev()
            .find(|&i| total_by_level[i] > 50)
            .unwrap_or(4);
        assert!(
            frac(top) > frac(0),
            "classic fractions: {:?} / {:?}",
            classic_by_level,
            total_by_level
        );
    }
}
