//! Generate-and-fold synthetic corpus: a [`ChunkSource`] that yields the
//! paper's §VI-A synthetic generator chunk by chunk **without ever
//! materializing the corpus** — the million-user path for
//! `upskill-core`'s chunked trainers.
//!
//! Two properties make the stream trainable out of core:
//!
//! 1. **Per-user RNG streams.** Every user owns an independent RNG seeded
//!    from a splitmix64 mix of `(seed, user index)`, so `load_chunk(i)`
//!    regenerates exactly the same sequences regardless of chunk size,
//!    load order, or how many times a chunk is revisited (the
//!    `Recompute` assignment storage replays chunks every iteration).
//! 2. **Level-major item layout.** Items are generated once (they are
//!    `n_items × F`, not corpus-sized) with level `l` owning the dense
//!    id range `l·per_level .. (l+1)·per_level`, so the skill-capped
//!    item selection needs no pool tables.
//!
//! Unlike [`crate::synthetic::generate`], the schema is `[categorical,
//! gamma, Poisson]` **without the item-id feature** and without support
//! filtering/compaction: compaction depends on which items the whole
//! corpus selects, which would make a chunk's content depend on every
//! other chunk. Ground-truth difficulty is still available per item id.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::chunked::{ChunkSource, DatasetChunk};
use upskill_core::error::{CoreError, Result};
use upskill_core::feature::{FeatureKind, FeatureValue, PositiveModel};
use upskill_core::types::{Dataset, ItemId};

use crate::sampling::{sample_categorical, sample_gamma, sample_poisson};
use crate::synthetic::SyntheticConfig;

/// splitmix64 finalizer over the `(seed, user)` pair: decorrelated
/// per-user streams from one corpus seed.
fn user_seed(seed: u64, user: u64) -> u64 {
    let mut z = seed ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The §VI-A synthetic corpus as an on-demand chunk stream.
///
/// Construction generates the item table (and one cheap length draw per
/// user to pin `n_actions`); sequences exist only inside whichever chunk
/// buffers are currently loaded.
#[derive(Debug, Clone)]
pub struct ChunkedSyntheticSource {
    config: SyntheticConfig,
    chunk_size: usize,
    item_view: Dataset,
    per_level: usize,
    n_actions: usize,
    true_difficulty: Vec<f64>,
}

impl ChunkedSyntheticSource {
    /// Builds the stream for `config`, partitioned into
    /// `chunk_size`-user chunks.
    pub fn new(config: &SyntheticConfig, chunk_size: usize) -> Result<Self> {
        if chunk_size == 0 {
            return Err(CoreError::InvalidChunkSize { requested: 0 });
        }
        let s_max = config.n_levels;
        let per_level = config.n_items / s_max.max(1);
        if s_max == 0 || per_level == 0 {
            return Err(CoreError::LengthMismatch {
                context: "synthetic items vs levels",
                left: config.n_items,
                right: s_max,
            });
        }
        // Items: same per-level parameters as the in-memory generator,
        // drawn from a dedicated item RNG (user streams never touch it).
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_items = per_level * s_max;
        let mut features: Vec<Vec<FeatureValue>> = Vec::with_capacity(n_items);
        let mut true_difficulty: Vec<f64> = Vec::with_capacity(n_items);
        for level in 0..s_max {
            let p = crate::synthetic::chunked_level_params(level, s_max, config.n_categories);
            for _ in 0..per_level {
                let cat = sample_categorical(&mut rng, &p.0) as u32;
                let g = sample_gamma(&mut rng, p.1, p.2).max(1e-6);
                let k = sample_poisson(&mut rng, p.3);
                features.push(vec![
                    FeatureValue::Categorical(cat),
                    FeatureValue::Real(g),
                    FeatureValue::Count(k),
                ]);
                true_difficulty.push((level + 1) as f64);
            }
        }
        let schema = upskill_core::feature::FeatureSchema::with_names(
            vec![
                FeatureKind::Categorical {
                    cardinality: config.n_categories,
                },
                FeatureKind::Positive {
                    model: PositiveModel::Gamma,
                },
                FeatureKind::Count,
            ],
            vec!["categorical".into(), "gamma".into(), "poisson".into()],
        )?;
        let item_view = Dataset::new(schema, features, Vec::new())?;
        // One length draw per user pins the corpus action count; the
        // same draw is the first thing `load_chunk` replays per user.
        let mut n_actions = 0usize;
        for user in 0..config.n_users as u64 {
            let mut urng = StdRng::seed_from_u64(user_seed(config.seed, user));
            n_actions += sample_poisson(&mut urng, config.mean_sequence_len).max(1) as usize;
        }
        Ok(Self {
            config: *config,
            chunk_size,
            item_view,
            per_level,
            n_actions,
            true_difficulty,
        })
    }

    /// Ground-truth difficulty per item id (`level` of the generating
    /// distributions, 1-based).
    pub fn true_difficulty(&self) -> &[f64] {
        &self.true_difficulty
    }

    /// The generator configuration this stream realizes.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Regenerates one user's sequence into `out` (already `begin_user`ed
    /// by the caller's loop). Identical draws for identical `(seed, user)`.
    fn generate_user(&self, user: u64, out: &mut DatasetChunk) -> Result<()> {
        let s_max = self.config.n_levels;
        let mut rng = StdRng::seed_from_u64(user_seed(self.config.seed, user));
        let len = sample_poisson(&mut rng, self.config.mean_sequence_len).max(1) as usize;
        let mut skill = rng.gen_range(0..s_max); // 0-based level
        for t in 0..len {
            let at_level = skill == 0 || rng.gen::<f64>() < self.config.p_at_level;
            let pool_level = if at_level {
                skill
            } else {
                rng.gen_range(0..skill)
            };
            let item = (pool_level * self.per_level + rng.gen_range(0..self.per_level)) as ItemId;
            out.push_action(t as i64, item)?;
            if at_level && skill + 1 < s_max && rng.gen::<f64>() < self.config.p_advance {
                skill += 1;
            }
        }
        Ok(())
    }
}

impl ChunkSource for ChunkedSyntheticSource {
    fn item_view(&self) -> &Dataset {
        &self.item_view
    }

    fn n_users(&self) -> usize {
        self.config.n_users
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn load_chunk(&self, index: usize, out: &mut DatasetChunk) -> Result<()> {
        let n_users = self.config.n_users;
        let start = index * self.chunk_size;
        if start >= n_users {
            return Err(CoreError::LengthMismatch {
                context: "chunk index vs chunk count",
                left: index,
                right: self.n_chunks(),
            });
        }
        let end = (start + self.chunk_size).min(n_users);
        out.reset(index, start);
        for user in start..end {
            out.begin_user(user as u32);
            self.generate_user(user as u64, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upskill_core::chunked::materialize;
    use upskill_core::parallel::ParallelConfig;
    use upskill_core::train::TrainConfig;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_users: 48,
            n_items: 120,
            n_levels: 4,
            mean_sequence_len: 18.0,
            p_at_level: 0.5,
            p_advance: 0.1,
            n_categories: 6,
            seed: 23,
        }
    }

    #[test]
    fn zero_chunk_size_rejected() {
        assert!(matches!(
            ChunkedSyntheticSource::new(&small_config(), 0),
            Err(CoreError::InvalidChunkSize { requested: 0 })
        ));
    }

    #[test]
    fn stream_is_chunk_size_invariant() {
        let a = ChunkedSyntheticSource::new(&small_config(), 1).unwrap();
        let b = ChunkedSyntheticSource::new(&small_config(), 7).unwrap();
        let c = ChunkedSyntheticSource::new(&small_config(), 1000).unwrap();
        let da = materialize(&a).unwrap();
        let db = materialize(&b).unwrap();
        let dc = materialize(&c).unwrap();
        assert_eq!(da.n_actions(), a.n_actions());
        for (x, y) in da.sequences().iter().zip(db.sequences()) {
            assert_eq!(x, y);
        }
        for (x, y) in da.sequences().iter().zip(dc.sequences()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn reloading_a_chunk_is_deterministic() {
        let source = ChunkedSyntheticSource::new(&small_config(), 5).unwrap();
        let mut a = DatasetChunk::new();
        let mut b = DatasetChunk::new();
        source.load_chunk(2, &mut a).unwrap();
        source.load_chunk(0, &mut b).unwrap(); // interleave another index
        source.load_chunk(2, &mut b).unwrap();
        assert_eq!(a.users(), b.users());
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn action_counts_agree_with_stream() {
        let source = ChunkedSyntheticSource::new(&small_config(), 7).unwrap();
        let mut chunk = DatasetChunk::new();
        let mut users = 0;
        let mut actions = 0;
        for i in 0..source.n_chunks() {
            source.load_chunk(i, &mut chunk).unwrap();
            users += chunk.n_users();
            actions += chunk.n_actions();
        }
        assert_eq!(users, source.n_users());
        assert_eq!(actions, source.n_actions());
    }

    #[test]
    fn items_respect_skill_cap() {
        // Selected items' difficulty never exceeds the per-level pool cap:
        // every id drawn for pool level l lies in l's dense range.
        let source = ChunkedSyntheticSource::new(&small_config(), 16).unwrap();
        let per_level = source.per_level;
        let mut chunk = DatasetChunk::new();
        source.load_chunk(0, &mut chunk).unwrap();
        for &item in chunk.items() {
            let level = item as usize / per_level;
            assert!(level < source.config.n_levels);
            assert_eq!(source.true_difficulty()[item as usize], (level + 1) as f64);
        }
    }

    #[test]
    fn chunked_training_matches_materialized_training() {
        let source = ChunkedSyntheticSource::new(&small_config(), 11).unwrap();
        let dataset = materialize(&source).unwrap();
        let config = TrainConfig::new(4)
            .with_min_init_actions(12)
            .with_max_iterations(4)
            .with_lambda(0.1);
        let expect = upskill_core::train::train_with_parallelism(
            &dataset,
            &config,
            &ParallelConfig::sequential(),
        )
        .unwrap();
        let got = upskill_core::chunked::train_chunked(
            &source,
            &config,
            &ParallelConfig::all(3),
            upskill_core::chunked::AssignmentStorage::Recompute,
        )
        .unwrap();
        assert_eq!(got.model, expect.model);
        assert_eq!(got.log_likelihood, expect.log_likelihood);
    }
}
