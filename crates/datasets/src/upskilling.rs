//! Closed-loop upskilling learner simulator.
//!
//! The synthetic generator ([`crate::synthetic`]) produces *logged*
//! action sequences: the item-selection policy is baked in. This module
//! instead simulates the **closed loop** the recommendation layer
//! actually operates in: an environment proposes the next item, the
//! learner stochastically succeeds or fails as a function of the item's
//! *stretch* above their true skill, successful stretch work advances
//! the skill, and the environment observes every outcome — so a
//! recommender's choices feed back into the learner it is estimating.
//!
//! The learner model:
//!
//! - success probability is `p_easy` at or below the true skill and
//!   decays linearly with positive stretch (`p_base − slope · stretch`,
//!   floored at `p_floor`);
//! - on success, the skill advances one level with probability
//!   `p_advance · (advance_base + max(stretch, 0))` — at-level practice
//!   advances slowly, while succeeding at stretch work advances much
//!   faster; combined with the success decay this puts the optimal
//!   stretch around 1–1.5 levels, with both pure comfort-zone practice
//!   and far overreach paying a steep progress penalty;
//! - failures never advance the skill.
//!
//! Every learner draws from its own [`SplitMix64`] stream derived from
//! `(seed, user)`, so a population of learners produces bitwise
//! identical traces no matter how the population is partitioned across
//! threads — the property the upskilling evaluation's determinism
//! tests pin down.

use upskill_core::error::{CoreError, Result};
use upskill_core::rng::SplitMix64;
use upskill_core::types::{ItemId, SkillLevel, UserId};

/// Stochastic learner parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnerConfig {
    /// Number of skill levels `S` (true skill lives in `1..=S`).
    pub n_levels: usize,
    /// Success probability at or below the true skill.
    pub p_easy: f64,
    /// Success probability intercept for stretch items.
    pub p_base: f64,
    /// Success probability decay per unit of positive stretch.
    pub slope: f64,
    /// Success probability floor for far-overreaching items.
    pub p_floor: f64,
    /// Base advancement probability scale.
    pub p_advance: f64,
    /// Advancement multiplier at zero stretch (at-level practice);
    /// effective advance chance is
    /// `p_advance · (advance_base + max(stretch, 0))`, capped at 0.95.
    pub advance_base: f64,
    /// Attempt budget per learner.
    pub max_actions: usize,
    /// Base seed; each learner's stream is derived from `(seed, user)`.
    pub seed: u64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        Self {
            n_levels: 5,
            p_easy: 0.97,
            p_base: 0.85,
            slope: 0.3,
            p_floor: 0.02,
            p_advance: 0.1,
            advance_base: 0.15,
            max_actions: 400,
            seed: 7,
        }
    }
}

impl LearnerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        for (context, v) in [
            ("learner p_easy", self.p_easy),
            ("learner p_base", self.p_base),
            ("learner p_floor", self.p_floor),
            ("learner p_advance", self.p_advance),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::InvalidProbability { context, value: v });
            }
        }
        for (context, v) in [
            ("learner slope", self.slope),
            ("learner advance_base", self.advance_base),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidProbability { context, value: v });
            }
        }
        if self.max_actions == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        Ok(())
    }
}

/// One attempted item in a learner trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnerStep {
    /// 0-based attempt index.
    pub step: usize,
    /// The attempted item.
    pub item: ItemId,
    /// The difficulty the environment reported for it.
    pub difficulty: f64,
    /// Whether the attempt succeeded.
    pub correct: bool,
    /// True skill after the attempt (advancement applied).
    pub skill_after: SkillLevel,
}

/// A complete simulated learner trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnerTrace {
    /// The simulated learner.
    pub user: UserId,
    /// True skill at the start.
    pub start: SkillLevel,
    /// The target level the loop runs toward.
    pub target: SkillLevel,
    /// Every attempt, in order.
    pub steps: Vec<LearnerStep>,
    /// Attempts consumed when the true skill first reached `target`
    /// (`None` if the budget ran out or the item supply dried up).
    pub reached_at: Option<usize>,
}

impl LearnerTrace {
    /// Attempts to reach the target, with unfinished runs censored at
    /// `censor` (typically the attempt budget).
    pub fn actions_to_target(&self, censor: usize) -> usize {
        self.reached_at.unwrap_or(censor)
    }

    /// Order-sensitive 64-bit digest of the full trace — cheap bitwise
    /// fingerprint for cross-thread-count determinism checks.
    pub fn digest(&self) -> u64 {
        let mut h = SplitMix64::new(
            0x0075_7273_6b69_6c6c ^ (self.user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut acc = h.next_u64() ^ self.start as u64 ^ ((self.target as u64) << 8);
        for s in &self.steps {
            let mut word = (s.item as u64) ^ ((s.step as u64) << 32);
            word ^= s.difficulty.to_bits().rotate_left(17);
            word ^= (u64::from(s.correct) << 1) | (s.skill_after as u64) << 48;
            acc = acc.rotate_left(13) ^ SplitMix64::new(word).next_u64();
        }
        acc ^ self.reached_at.map_or(u64::MAX, |r| r as u64)
    }
}

/// The environment side of the closed loop: proposes items and
/// observes outcomes. The upskilling evaluation implements this over a
/// live `SkillService`; tests implement it over fixed scripts.
pub trait LearnerEnv {
    /// Pick the next item (id + difficulty) for `user` at attempt
    /// `step`, or `None` when nothing is left to recommend.
    fn next_item(&mut self, user: UserId, step: usize) -> Option<(ItemId, f64)>;

    /// Observe the drawn outcome of the attempt. Environments feeding
    /// a model should ingest *successful* attempts here (a completed
    /// action) and record failures as policy evidence only.
    fn observe(&mut self, user: UserId, step: usize, item: ItemId, difficulty: f64, correct: bool);
}

/// The per-learner RNG stream for `(seed, user)` — stable across
/// partitionings of the learner population.
pub fn learner_rng(seed: u64, user: UserId) -> SplitMix64 {
    let mix = SplitMix64::new((user as u64).wrapping_add(0xA5A5_5A5A)).next_u64();
    SplitMix64::new(seed ^ mix)
}

/// Runs one learner's closed loop: repeatedly asks `env` for the next
/// item, draws the outcome from the learner model, reports it back,
/// and stops when the true skill reaches `target`, the budget is
/// spent, or the environment runs dry.
pub fn simulate_learner<E: LearnerEnv>(
    user: UserId,
    start: SkillLevel,
    target: SkillLevel,
    cfg: &LearnerConfig,
    env: &mut E,
) -> Result<LearnerTrace> {
    cfg.validate()?;
    let mut rng = learner_rng(cfg.seed, user);
    let mut skill = start;
    let mut steps = Vec::new();
    let mut reached_at = if skill >= target { Some(0) } else { None };
    for t in 0..cfg.max_actions {
        if reached_at.is_some() {
            break;
        }
        let Some((item, difficulty)) = env.next_item(user, t) else {
            break;
        };
        let stretch = difficulty - skill as f64;
        let p = if stretch <= 0.0 {
            self::success_clamp(cfg.p_easy)
        } else {
            (cfg.p_base - cfg.slope * stretch).max(cfg.p_floor)
        };
        let correct = rng.next_f64() < p;
        if correct && (skill as usize) < cfg.n_levels {
            let p_adv = (cfg.p_advance * (cfg.advance_base + stretch.max(0.0))).clamp(0.0, 0.95);
            if rng.next_f64() < p_adv {
                skill += 1;
            }
        }
        env.observe(user, t, item, difficulty, correct);
        steps.push(LearnerStep {
            step: t,
            item,
            difficulty,
            correct,
            skill_after: skill,
        });
        if skill >= target {
            reached_at = Some(t + 1);
        }
    }
    Ok(LearnerTrace {
        user,
        start,
        target,
        steps,
        reached_at,
    })
}

fn success_clamp(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted environment: a ladder of items whose difficulty tracks
    /// the learner's attempt count.
    struct Ladder {
        difficulty_of: fn(usize) -> f64,
        observed: Vec<(usize, ItemId, bool)>,
        dry_after: usize,
    }

    impl LearnerEnv for Ladder {
        fn next_item(&mut self, _user: UserId, step: usize) -> Option<(ItemId, f64)> {
            (step < self.dry_after).then(|| (step as ItemId, (self.difficulty_of)(step)))
        }
        fn observe(
            &mut self,
            _user: UserId,
            step: usize,
            item: ItemId,
            _difficulty: f64,
            correct: bool,
        ) {
            self.observed.push((step, item, correct));
        }
    }

    fn ladder(difficulty_of: fn(usize) -> f64) -> Ladder {
        Ladder {
            difficulty_of,
            observed: Vec::new(),
            dry_after: usize::MAX,
        }
    }

    #[test]
    fn identical_seeds_reproduce_traces_bitwise() {
        let cfg = LearnerConfig {
            max_actions: 200,
            ..LearnerConfig::default()
        };
        let mut a = ladder(|t| 1.0 + (t / 20) as f64);
        let mut b = ladder(|t| 1.0 + (t / 20) as f64);
        let ta = simulate_learner(11, 1, 5, &cfg, &mut a).unwrap();
        let tb = simulate_learner(11, 1, 5, &cfg, &mut b).unwrap();
        assert_eq!(ta, tb);
        assert_eq!(ta.digest(), tb.digest());
        assert_eq!(a.observed, b.observed);
        // A different user draws a different stream.
        let mut c = ladder(|t| 1.0 + (t / 20) as f64);
        let tc = simulate_learner(12, 1, 5, &cfg, &mut c).unwrap();
        assert_ne!(ta.digest(), tc.digest());
    }

    #[test]
    fn stretch_work_upskills_faster_than_pure_practice() {
        let cfg = LearnerConfig {
            max_actions: 3_000,
            seed: 99,
            ..LearnerConfig::default()
        };
        let n = 40;
        let mean = |difficulty_of: fn(usize) -> f64| -> f64 {
            (0..n)
                .map(|u| {
                    let mut env = ladder(difficulty_of);
                    simulate_learner(u, 1, 5, &cfg, &mut env)
                        .unwrap()
                        .actions_to_target(cfg.max_actions) as f64
                })
                .sum::<f64>()
                / n as f64
        };
        // Always-at-level practice vs always-one-above stretch: the
        // stretch regimen must reach the top level in fewer attempts.
        let practice = mean(|_| 1.0); // difficulty pinned at the floor
        let stretch = mean(|_| 5.0); // far overreach: floor probability
        let moderate = mean(|_| 3.0);
        assert!(
            moderate < practice,
            "moderate stretch {moderate} vs practice {practice}"
        );
        // Far overreach pays the p_floor success penalty.
        assert!(stretch > 0.0);
    }

    #[test]
    fn environment_running_dry_censors_the_trace() {
        let cfg = LearnerConfig::default();
        let mut env = ladder(|_| 1.0);
        env.dry_after = 3;
        let trace = simulate_learner(5, 1, 5, &cfg, &mut env).unwrap();
        assert_eq!(trace.steps.len(), 3);
        assert_eq!(trace.reached_at, None);
        assert_eq!(trace.actions_to_target(cfg.max_actions), cfg.max_actions);
    }

    #[test]
    fn already_at_target_takes_no_actions() {
        let cfg = LearnerConfig::default();
        let mut env = ladder(|_| 1.0);
        let trace = simulate_learner(5, 5, 5, &cfg, &mut env).unwrap();
        assert!(trace.steps.is_empty());
        assert_eq!(trace.reached_at, Some(0));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = LearnerConfig::default();
        for bad in [
            LearnerConfig {
                p_base: 1.5,
                ..base
            },
            LearnerConfig {
                n_levels: 0,
                ..base
            },
            LearnerConfig {
                slope: -1.0,
                ..base
            },
            LearnerConfig {
                max_actions: 0,
                ..base
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }
}
