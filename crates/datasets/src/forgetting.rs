//! Synthetic generator with **skill decay**: the §VII extension scenario.
//!
//! Identical to the base synthetic generator except user timelines contain
//! occasional long breaks, after which the user's true skill drops one
//! level with a probability following an Ebbinghaus-style retention curve.
//! Ground truth is returned so the forgetting-aware DP can be evaluated
//! against the monotone baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::error::Result;
use upskill_core::feature::{FeatureKind, FeatureValue, PositiveModel};
use upskill_core::types::{Dataset, SkillLevel};

use crate::filtering::{assemble, RawAction};
use crate::sampling::{sample_categorical, sample_gamma, sample_poisson};

/// Configuration for the forgetting scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForgettingScenarioConfig {
    /// Number of users.
    pub n_users: usize,
    /// Total number of items (split evenly across levels).
    pub n_items: usize,
    /// Number of skill levels.
    pub n_levels: usize,
    /// Mean sequence length.
    pub mean_sequence_len: f64,
    /// Probability of advancing after an at-level action.
    pub p_advance: f64,
    /// Per-action probability that a long break precedes it.
    pub p_break: f64,
    /// Length of a long break (time units; normal actions are 1 apart).
    pub break_length: i64,
    /// Probability the skill drops one level across a long break.
    pub p_decay_on_break: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ForgettingScenarioConfig {
    /// A default evaluation scenario.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            n_users: 300,
            n_items: 1_000,
            n_levels: 5,
            mean_sequence_len: 60.0,
            p_advance: 0.12,
            p_break: 0.06,
            break_length: 5_000,
            p_decay_on_break: 0.7,
            seed,
        }
    }
}

/// The generated scenario with ground truth.
#[derive(Debug, Clone)]
pub struct ForgettingScenario {
    /// The dataset (schema identical to the base synthetic generator).
    pub dataset: Dataset,
    /// Ground-truth (non-monotone) skill per action.
    pub true_skills: Vec<Vec<SkillLevel>>,
    /// Ground-truth difficulty per item.
    pub true_difficulty: Vec<f64>,
    /// Number of decay events injected.
    pub n_decays: usize,
}

impl ForgettingScenario {
    /// Flattened ground-truth skills in action order.
    pub fn flat_true_skills(&self) -> Vec<f64> {
        self.true_skills
            .iter()
            .flat_map(|s| s.iter().map(|&x| x as f64))
            .collect()
    }
}

/// Generates the forgetting scenario.
pub fn generate(config: &ForgettingScenarioConfig) -> Result<ForgettingScenario> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let s_max = config.n_levels;

    // Items: same per-level feature construction as the base generator.
    let per_level = config.n_items / s_max;
    let mut features = Vec::with_capacity(per_level * s_max);
    let mut difficulty = Vec::with_capacity(per_level * s_max);
    let mut pools: Vec<Vec<u32>> = vec![Vec::with_capacity(per_level); s_max];
    for level in 0..s_max {
        let mut cat_weights = vec![1.0f64; 10];
        cat_weights[level % 10] = 5.0;
        for _ in 0..per_level {
            let id = features.len() as u32;
            let cat = sample_categorical(&mut rng, &cat_weights) as u32;
            let g = sample_gamma(&mut rng, 2.0 + level as f64, 1.0 + 0.5 * level as f64).max(1e-6);
            let k = sample_poisson(&mut rng, 3.0 + 4.0 * level as f64);
            features.push(vec![
                FeatureValue::Categorical(cat),
                FeatureValue::Real(g),
                FeatureValue::Count(k),
            ]);
            difficulty.push((level + 1) as f64);
            pools[level].push(id);
        }
    }

    // Users with breaks and decay.
    let mut actions: Vec<RawAction> = Vec::new();
    let mut skills_by_user = Vec::with_capacity(config.n_users);
    let mut n_decays = 0usize;
    for user in 0..config.n_users as u32 {
        let len = sample_poisson(&mut rng, config.mean_sequence_len).max(2) as usize;
        let mut skill = rng.gen_range(0..s_max);
        let mut time = 0i64;
        let mut skills = Vec::with_capacity(len);
        for _ in 0..len {
            // Occasionally a long break; skill may decay across it.
            if rng.gen::<f64>() < config.p_break {
                time += config.break_length;
                if skill > 0 && rng.gen::<f64>() < config.p_decay_on_break {
                    skill -= 1;
                    n_decays += 1;
                }
            } else {
                time += 1;
            }
            let at_level = skill == 0 || rng.gen::<f64>() < 0.5;
            let pool_level = if at_level {
                skill
            } else {
                rng.gen_range(0..skill)
            };
            let item = pools[pool_level][rng.gen_range(0..per_level)];
            actions.push((time, user, item));
            skills.push((skill + 1) as SkillLevel);
            if at_level && skill + 1 < s_max && rng.gen::<f64>() < config.p_advance {
                skill += 1;
            }
        }
        skills_by_user.push(skills);
    }

    let assembled = assemble(
        vec![
            FeatureKind::Categorical { cardinality: 10 },
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
            FeatureKind::Count,
        ],
        vec!["categorical".into(), "gamma".into(), "poisson".into()],
        true,
        &features,
        &actions,
    )?;
    let true_difficulty: Vec<f64> = assembled
        .items
        .new_to_old
        .iter()
        .map(|&old| difficulty[old as usize])
        .collect();
    let true_skills: Vec<Vec<SkillLevel>> = assembled
        .users
        .new_to_old
        .iter()
        .map(|&old| skills_by_user[old as usize].clone())
        .collect();
    Ok(ForgettingScenario {
        dataset: assembled.dataset,
        true_skills,
        true_difficulty,
        n_decays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ForgettingScenarioConfig {
        ForgettingScenarioConfig {
            n_users: 50,
            n_items: 200,
            mean_sequence_len: 40.0,
            ..ForgettingScenarioConfig::default_scale(3)
        }
    }

    #[test]
    fn scenario_injects_decays() {
        let s = generate(&small()).unwrap();
        assert!(s.n_decays > 0, "no decay events generated");
        // Ground-truth skills are NOT all monotone.
        let nonmonotone = s
            .true_skills
            .iter()
            .filter(|seq| seq.windows(2).any(|w| w[1] < w[0]))
            .count();
        assert!(nonmonotone > 0, "expected non-monotone truth sequences");
    }

    #[test]
    fn decays_coincide_with_long_gaps() {
        let s = generate(&small()).unwrap();
        for (seq, skills) in s.dataset.sequences().iter().zip(&s.true_skills) {
            for (w, pair) in seq.actions().windows(2).zip(skills.windows(2)) {
                if pair[1] < pair[0] {
                    let gap = w[1].time - w[0].time;
                    assert!(gap >= 1_000, "decay without a long break (gap {gap})");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small()).unwrap();
        let b = generate(&small()).unwrap();
        assert_eq!(a.n_decays, b.n_decays);
        assert_eq!(a.true_skills, b.true_skills);
    }

    #[test]
    fn schema_matches_base_synthetic() {
        let s = generate(&small()).unwrap();
        assert_eq!(s.dataset.schema().len(), 4);
        assert_eq!(s.dataset.schema().name(0), "item id");
    }
}
