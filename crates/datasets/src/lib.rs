//! # upskill-datasets
//!
//! Seeded domain simulators and dataset utilities for the upskill
//! workspace. The paper evaluates on four proprietary/crawled real-world
//! datasets (Lang-8, Rakuten Recipe, RateBeer, MovieLens) plus a synthetic
//! one; this crate replaces each real dataset with a synthetic simulator
//! that preserves the feature schema and the skill-dependent structure the
//! paper reports (see DESIGN.md §2 for the substitution table), and
//! implements the paper's synthetic generator verbatim.
//!
//! - [`synthetic`] — §VI-A generator with ground-truth skill/difficulty;
//! - [`chunked`] — the same corpus as an on-demand chunk stream
//!   (generate-and-fold; never materializes the corpus);
//! - [`language`] — Lang-8 analogue (correction rules, per-article stats);
//! - [`cooking`] — Rakuten Recipe analogue (incl. the novice-overreach
//!   anomaly of §VI-C);
//! - [`beer`] — RateBeer analogue (styles, ABV, per-action ratings);
//! - [`film`] — MovieLens analogue (incl. the lastness effect and its fix);
//! - [`filtering`] — the paper's iterative support filter + assembly;
//! - [`sampling`] — gamma/Poisson/categorical/Zipf samplers;
//! - [`stats`] — Table I statistics;
//! - [`upskilling`] — closed-loop learner simulator for recommendation
//!   policy evaluation (learner skill responds to recommended stretch).
//!
//! All generators take an explicit seed and are bit-reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod beer;
pub mod chunked;
pub mod cooking;
pub mod film;
pub mod filtering;
pub mod forgetting;
pub mod language;
pub mod sampling;
pub mod stats;
pub mod synthetic;
pub mod upskilling;

pub use filtering::{assemble, iterative_support_filter, RawAction, SupportFilter};
pub use stats::DatasetStats;
