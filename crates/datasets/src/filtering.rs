//! Raw-action filtering and dataset assembly (paper §VI-B).
//!
//! Simulators produce *raw* action triples `(time, user, item)` against an
//! item feature table. Before assembling a [`Dataset`]:
//!
//! 1. [`iterative_support_filter`] applies the paper's Beer/Film filter —
//!    drop users with fewer than `K` unique items and items selected by
//!    fewer than `K` unique users, repeating until a fixpoint (removing
//!    users changes item support and vice versa);
//! 2. [`assemble`] compacts user and item ids, optionally prepends the
//!    item-ID categorical feature, sorts sequences chronologically, and
//!    validates everything into a [`Dataset`].
//!
//! The Film domain's "lastness" preprocessing (drop items released after
//! the earliest action) is a plain predicate filter: [`filter_items`].

use std::collections::HashSet;

use upskill_core::error::{CoreError, Result};
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
use upskill_core::types::{ActionSequence, Dataset};

/// A raw action triple `(time, user, item)` with original (sparse) ids.
pub type RawAction = (i64, u32, u32);

/// Support thresholds for the iterative filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportFilter {
    /// Minimum number of *unique* items a user must have selected.
    pub min_unique_items_per_user: usize,
    /// Minimum number of *unique* users an item must be selected by.
    pub min_unique_users_per_item: usize,
}

impl SupportFilter {
    /// The paper's Beer/Film setting: both thresholds 50.
    pub fn paper() -> Self {
        Self {
            min_unique_items_per_user: 50,
            min_unique_users_per_item: 50,
        }
    }
}

/// Applies the user/item support filter until a fixpoint and returns the
/// surviving actions (original ids, original order).
pub fn iterative_support_filter(actions: &[RawAction], filter: SupportFilter) -> Vec<RawAction> {
    let mut current: Vec<RawAction> = actions.to_vec();
    loop {
        // Unique items per user / unique users per item.
        let mut user_items: std::collections::HashMap<u32, HashSet<u32>> =
            std::collections::HashMap::new();
        let mut item_users: std::collections::HashMap<u32, HashSet<u32>> =
            std::collections::HashMap::new();
        for &(_, u, i) in &current {
            user_items.entry(u).or_default().insert(i);
            item_users.entry(i).or_default().insert(u);
        }
        let bad_users: HashSet<u32> = user_items
            .iter()
            .filter(|(_, items)| items.len() < filter.min_unique_items_per_user)
            .map(|(&u, _)| u)
            .collect();
        let bad_items: HashSet<u32> = item_users
            .iter()
            .filter(|(_, users)| users.len() < filter.min_unique_users_per_item)
            .map(|(&i, _)| i)
            .collect();
        if bad_users.is_empty() && bad_items.is_empty() {
            return current;
        }
        current.retain(|&(_, u, i)| !bad_users.contains(&u) && !bad_items.contains(&i));
        if current.is_empty() {
            return current;
        }
    }
}

/// Drops actions whose item fails a predicate (e.g. the Film lastness fix:
/// keep only items released no later than the earliest action).
pub fn filter_items(actions: &[RawAction], keep: impl Fn(u32) -> bool) -> Vec<RawAction> {
    actions
        .iter()
        .copied()
        .filter(|&(_, _, i)| keep(i))
        .collect()
}

/// Mapping between original and compacted ids after [`assemble`].
#[derive(Debug, Clone)]
pub struct IdRemap {
    /// `new_to_old[new]` = original id.
    pub new_to_old: Vec<u32>,
    /// `old_to_new[old]` = compacted id, if the entity survived.
    pub old_to_new: Vec<Option<u32>>,
}

impl IdRemap {
    fn build(original_ids: impl Iterator<Item = u32>, max_old: usize) -> Self {
        let mut seen = vec![false; max_old];
        for id in original_ids {
            seen[id as usize] = true;
        }
        let mut new_to_old = Vec::new();
        let mut old_to_new = vec![None; max_old];
        for (old, &s) in seen.iter().enumerate() {
            if s {
                old_to_new[old] = Some(new_to_old.len() as u32);
                new_to_old.push(old as u32);
            }
        }
        Self {
            new_to_old,
            old_to_new,
        }
    }
}

/// Output of [`assemble`].
#[derive(Debug, Clone)]
pub struct Assembled {
    /// The validated dataset with compact ids.
    pub dataset: Dataset,
    /// Item id mapping (original → compact).
    pub items: IdRemap,
    /// User id mapping (original → compact).
    pub users: IdRemap,
}

/// Builds a [`Dataset`] from raw actions and an item feature table
/// (indexed by *original* item id, **without** the ID feature).
///
/// When `include_id` is set, a categorical item-ID feature over the
/// *compacted* id space is prepended to the schema, matching the paper's
/// Cooking/Beer/Film feature sets.
pub fn assemble(
    kinds: Vec<FeatureKind>,
    names: Vec<String>,
    include_id: bool,
    item_features: &[Vec<FeatureValue>],
    actions: &[RawAction],
) -> Result<Assembled> {
    if actions.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let max_item = actions
        .iter()
        .map(|&(_, _, i)| i as usize)
        .max()
        .unwrap_or(0)
        + 1;
    if max_item > item_features.len() {
        return Err(CoreError::FeatureIndexOutOfBounds {
            index: max_item - 1,
            len: item_features.len(),
        });
    }
    let max_user = actions
        .iter()
        .map(|&(_, u, _)| u as usize)
        .max()
        .unwrap_or(0)
        + 1;
    let items = IdRemap::build(actions.iter().map(|&(_, _, i)| i), max_item);
    let users = IdRemap::build(actions.iter().map(|&(_, u, _)| u), max_user);
    let n_items = items.new_to_old.len() as u32;

    // Schema: optional ID feature + the supplied kinds.
    let mut all_kinds = Vec::with_capacity(kinds.len() + usize::from(include_id));
    let mut all_names = Vec::with_capacity(all_kinds.capacity());
    if include_id {
        all_kinds.push(FeatureKind::Categorical {
            cardinality: n_items,
        });
        all_names.push("item id".to_string());
    }
    all_kinds.extend(kinds);
    all_names.extend(names);
    let schema = FeatureSchema::with_names(all_kinds, all_names)?;

    // Compact item table.
    let table: Vec<Vec<FeatureValue>> = items
        .new_to_old
        .iter()
        .enumerate()
        .map(|(new_id, &old_id)| {
            let mut row = Vec::with_capacity(schema.len());
            if include_id {
                row.push(FeatureValue::Categorical(new_id as u32));
            }
            row.extend(item_features[old_id as usize].iter().copied());
            row
        })
        .collect();

    // Group actions per compact user, then sort by time.
    let n_users = users.new_to_old.len();
    let mut per_user: Vec<Vec<upskill_core::types::Action>> = vec![Vec::new(); n_users];
    for &(t, u, i) in actions {
        let nu = users.old_to_new[u as usize].expect("user seen in actions");
        let ni = items.old_to_new[i as usize].expect("item seen in actions");
        per_user[nu as usize].push(upskill_core::types::Action::new(t, nu, ni));
    }
    let sequences: Vec<ActionSequence> = per_user
        .into_iter()
        .enumerate()
        .map(|(u, actions)| ActionSequence::from_unsorted(u as u32, actions))
        .collect::<Result<_>>()?;

    let dataset = Dataset::new(schema, table, sequences)?;
    Ok(Assembled {
        dataset,
        items,
        users,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(t: i64, u: u32, i: u32) -> RawAction {
        (t, u, i)
    }

    #[test]
    fn support_filter_no_op_when_all_pass() {
        let actions = vec![act(0, 0, 0), act(1, 0, 1), act(0, 1, 0), act(1, 1, 1)];
        let f = SupportFilter {
            min_unique_items_per_user: 2,
            min_unique_users_per_item: 2,
        };
        assert_eq!(iterative_support_filter(&actions, f), actions);
    }

    #[test]
    fn support_filter_drops_sparse_users_and_items() {
        // User 2 selected only one item; item 2 selected by only one user.
        let actions = vec![
            act(0, 0, 0),
            act(1, 0, 1),
            act(0, 1, 0),
            act(1, 1, 1),
            act(0, 2, 0), // user 2: 1 unique item → dropped
            act(2, 0, 2), // item 2: 1 unique user → dropped
        ];
        let f = SupportFilter {
            min_unique_items_per_user: 2,
            min_unique_users_per_item: 2,
        };
        let kept = iterative_support_filter(&actions, f);
        assert!(kept.iter().all(|&(_, u, i)| u != 2 && i != 2));
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn support_filter_cascades_to_fixpoint() {
        // Dropping item 1 (1 user) leaves user 1 with 1 unique item,
        // dropping user 1 leaves item 0 with enough users still.
        let actions = vec![
            act(0, 0, 0),
            act(1, 0, 2),
            act(0, 1, 0),
            act(1, 1, 1), // item 1 selected by 1 user
            act(0, 2, 0),
            act(1, 2, 2),
        ];
        let f = SupportFilter {
            min_unique_items_per_user: 2,
            min_unique_users_per_item: 2,
        };
        let kept = iterative_support_filter(&actions, f);
        // Item 1 goes; then user 1 has only item 0 → goes too.
        assert!(kept.iter().all(|&(_, u, i)| u != 1 && i != 1));
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn support_filter_can_empty_everything() {
        let actions = vec![act(0, 0, 0)];
        let kept = iterative_support_filter(&actions, SupportFilter::paper());
        assert!(kept.is_empty());
    }

    #[test]
    fn filter_items_by_predicate() {
        let actions = vec![act(0, 0, 0), act(1, 0, 5), act(2, 0, 2)];
        let kept = filter_items(&actions, |i| i < 3);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn assemble_compacts_sparse_ids() {
        // Items 0 and 7 used; users 3 and 9.
        let features = {
            let mut f = vec![vec![FeatureValue::Count(0)]; 8];
            f[7] = vec![FeatureValue::Count(9)];
            f
        };
        let actions = vec![act(5, 3, 7), act(1, 3, 0), act(0, 9, 7)];
        let out = assemble(
            vec![FeatureKind::Count],
            vec!["steps".into()],
            false,
            &features,
            &actions,
        )
        .unwrap();
        assert_eq!(out.dataset.n_items(), 2);
        assert_eq!(out.dataset.n_users(), 2);
        assert_eq!(out.dataset.n_actions(), 3);
        // Sequences sorted by time.
        let seq0 = &out.dataset.sequences()[0];
        assert!(seq0.actions().windows(2).all(|w| w[0].time <= w[1].time));
        // Remap round-trips.
        assert_eq!(
            out.items.old_to_new[7].map(|n| out.items.new_to_old[n as usize]),
            Some(7)
        );
        assert_eq!(
            out.users.old_to_new[9].map(|n| out.users.new_to_old[n as usize]),
            Some(9)
        );
        assert_eq!(out.items.old_to_new[3], None);
    }

    #[test]
    fn assemble_with_id_feature() {
        let features = vec![vec![FeatureValue::Count(1)], vec![FeatureValue::Count(2)]];
        let actions = vec![act(0, 0, 0), act(1, 0, 1)];
        let out = assemble(
            vec![FeatureKind::Count],
            vec!["steps".into()],
            true,
            &features,
            &actions,
        )
        .unwrap();
        assert_eq!(out.dataset.schema().len(), 2);
        assert_eq!(out.dataset.schema().name(0), "item id");
        assert_eq!(
            out.dataset.item_features(1)[0],
            FeatureValue::Categorical(1)
        );
    }

    #[test]
    fn assemble_rejects_empty_and_missing_features() {
        assert!(assemble(vec![FeatureKind::Count], vec!["x".into()], false, &[], &[]).is_err());
        let actions = vec![act(0, 0, 3)];
        let features = vec![vec![FeatureValue::Count(1)]];
        assert!(assemble(
            vec![FeatureKind::Count],
            vec!["x".into()],
            false,
            &features,
            &actions
        )
        .is_err());
    }
}
