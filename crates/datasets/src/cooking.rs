//! Cooking domain simulator (stands in for the Rakuten Recipe dataset; see
//! DESIGN.md §2).
//!
//! Recipes carry the paper's feature set: an ID, a category, a cooking-time
//! class, a cost class, a main ingredient, and step/ingredient counts.
//! Each recipe has a latent complexity in `1..=5`; time, cost, and counts
//! grow with complexity.
//!
//! Selection behaviour reproduces the paper's §VI-C anomaly: users at
//! levels 2–4 select recipes within (and biased toward) their capacity,
//! but the *lowest*-level users over-reach and select like mid-level users
//! — they cannot yet judge whether a recipe exceeds their skill. This makes
//! the learned level-1 distributions resemble the mid-level ones (Fig. 5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upskill_core::error::Result;
use upskill_core::feature::{FeatureKind, FeatureValue};
use upskill_core::types::{Dataset, SkillLevel};

use crate::filtering::{assemble, RawAction};
use crate::sampling::{sample_categorical, sample_poisson, sample_zipf};

/// Number of skill levels (paper's data-driven choice: S = 5, Fig. 3).
pub const COOKING_LEVELS: usize = 5;

/// Recipe categories (categorical feature values, by index).
pub const CATEGORIES: &[&str] = &[
    "rice bowls",
    "noodles",
    "salads",
    "soups",
    "stir fry",
    "grilled fish",
    "stews",
    "bento",
    "breads",
    "cakes",
    "cookies",
    "curry",
    "hot pot",
    "sushi",
    "tempura",
    "dumplings",
    "pickles",
    "tofu dishes",
    "egg dishes",
    "confectionery",
];

/// Cooking-time classes (ordered by duration).
pub const TIME_CLASSES: &[&str] = &[
    "~5 min", "~15 min", "~30 min", "~1 hour", "~2 hours", "2 hours+",
];

/// Cooking-cost classes (ordered by price).
pub const COST_CLASSES: &[&str] = &[
    "~JPY 300",
    "~JPY 500",
    "~JPY 1,000",
    "~JPY 2,000",
    "JPY 2,000+",
];

/// Main-ingredient vocabulary.
pub const INGREDIENTS: &[&str] = &[
    "rice",
    "egg",
    "chicken",
    "pork",
    "beef",
    "salmon",
    "tuna",
    "shrimp",
    "tofu",
    "cabbage",
    "onion",
    "potato",
    "carrot",
    "daikon",
    "mushroom",
    "spinach",
    "eggplant",
    "cucumber",
    "tomato",
    "seaweed",
    "miso",
    "soy",
    "flour",
    "butter",
    "milk",
    "cheese",
    "cream",
    "chocolate",
    "apple",
    "strawberry",
    "matcha",
    "sesame",
    "ginger",
    "garlic",
    "scallion",
    "lotus root",
    "burdock",
    "octopus",
    "squid",
    "crab",
];

/// Index of each feature in the cooking schema (ID is feature 0).
pub mod features {
    /// Item ID (categorical).
    pub const ID: usize = 0;
    /// Recipe category (categorical).
    pub const CATEGORY: usize = 1;
    /// Cooking-time class (categorical, ordered).
    pub const TIME: usize = 2;
    /// Cooking-cost class (categorical, ordered).
    pub const COST: usize = 3;
    /// Main ingredient (categorical).
    pub const INGREDIENT: usize = 4;
    /// Number of ingredients (Poisson).
    pub const N_INGREDIENTS: usize = 5;
    /// Number of steps (Poisson).
    pub const N_STEPS: usize = 6;
}

/// Configuration for the cooking simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CookingConfig {
    /// Number of cooks.
    pub n_users: usize,
    /// Number of recipes.
    pub n_recipes: usize,
    /// Fraction of users with long cooking histories.
    pub dedicated_fraction: f64,
    /// Mean report count for casual users.
    pub casual_mean_len: f64,
    /// Mean report count for dedicated users.
    pub dedicated_mean_len: f64,
    /// Per-action probability of advancing one skill level.
    pub p_advance: f64,
    /// Whether the lowest level over-reaches (the §VI-C anomaly). Disable
    /// to generate a "well-behaved" counterfactual for ablations.
    pub novice_overreach: bool,
    /// RNG seed.
    pub seed: u64,
}

impl CookingConfig {
    /// Default scale (~23k actions), roughly 1/5 of Table I.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            n_users: 1_200,
            n_recipes: 3_000,
            dedicated_fraction: 0.1,
            casual_mean_len: 12.0,
            dedicated_mean_len: 80.0,
            p_advance: 0.05,
            novice_overreach: true,
            seed,
        }
    }

    /// Small scale for tests.
    pub fn test_scale(seed: u64) -> Self {
        Self {
            n_users: 120,
            n_recipes: 400,
            dedicated_fraction: 0.3,
            casual_mean_len: 10.0,
            dedicated_mean_len: 60.0,
            p_advance: 0.05,
            novice_overreach: true,
            seed,
        }
    }
}

/// The generated cooking dataset plus metadata.
#[derive(Debug, Clone)]
pub struct CookingData {
    /// The assembled dataset (ID + 6 recipe features).
    pub dataset: Dataset,
    /// Latent complexity (1..=5) of each compact recipe id.
    pub recipe_complexity: Vec<u8>,
    /// Latent ground-truth skill per action.
    pub true_skills: Vec<Vec<SkillLevel>>,
}

/// Generates the cooking dataset.
pub fn generate(config: &CookingConfig) -> Result<CookingData> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Recipes: complexity-driven features.
    let mut item_features = Vec::with_capacity(config.n_recipes);
    let mut complexity = Vec::with_capacity(config.n_recipes);
    for _ in 0..config.n_recipes {
        let c = rng.gen_range(0..COOKING_LEVELS); // 0-based complexity
        let category = sample_zipf(&mut rng, CATEGORIES.len(), 1.1) as u32;
        // Time/cost classes concentrate around the complexity.
        let time = pick_ordered_class(&mut rng, c, COOKING_LEVELS, TIME_CLASSES.len());
        let cost = pick_ordered_class(&mut rng, c, COOKING_LEVELS, COST_CLASSES.len());
        let ingredient = sample_zipf(&mut rng, INGREDIENTS.len(), 1.05) as u32;
        let n_ingredients = sample_poisson(&mut rng, 2.0 + 3.0 * c as f64).max(1);
        let n_steps = sample_poisson(&mut rng, 2.0 + 5.0 * c as f64).max(1);
        item_features.push(vec![
            FeatureValue::Categorical(category),
            FeatureValue::Categorical(time as u32),
            FeatureValue::Categorical(cost as u32),
            FeatureValue::Categorical(ingredient),
            FeatureValue::Count(n_ingredients),
            FeatureValue::Count(n_steps),
        ]);
        complexity.push((c + 1) as u8);
    }
    // Recipe pool per complexity.
    let mut pools: Vec<Vec<u32>> = vec![Vec::new(); COOKING_LEVELS];
    for (id, &c) in complexity.iter().enumerate() {
        pools[c as usize - 1].push(id as u32);
    }

    // Users.
    let mut actions: Vec<RawAction> = Vec::new();
    let mut skills_by_user = Vec::with_capacity(config.n_users);
    for user in 0..config.n_users as u32 {
        let dedicated = rng.gen::<f64>() < config.dedicated_fraction;
        let mean_len = if dedicated {
            config.dedicated_mean_len
        } else {
            config.casual_mean_len
        };
        let len = sample_poisson(&mut rng, mean_len).max(1) as usize;
        let mut level = sample_categorical(&mut rng, &[0.45, 0.20, 0.15, 0.12, 0.08]);
        let mut skills = Vec::with_capacity(len);
        for t in 0..len {
            // Selection weights over recipe complexities. Users at levels
            // ≥ 2 pick recipes concentrated near their ability with an
            // exponentially decaying tail of easier ones. Novices cannot
            // yet judge difficulty (§VI-C): when the anomaly is enabled
            // they select a broad mixture centred on *medium* complexity.
            let weights: Vec<f64> = if level == 0 && config.novice_overreach {
                vec![1.0, 1.6, 2.2, 1.2, 0.3]
            } else {
                let mut w = vec![0.0f64; COOKING_LEVELS];
                for (c, wc) in w.iter_mut().enumerate().take(level + 1) {
                    *wc = 4.0 * 0.12f64.powi((level - c) as i32);
                }
                w
            };
            let pool_level = sample_categorical(&mut rng, &weights);
            let pool = &pools[pool_level];
            if pool.is_empty() {
                continue;
            }
            let item = pool[rng.gen_range(0..pool.len())];
            actions.push((t as i64, user, item));
            skills.push((level + 1) as SkillLevel);
            // Beginners improve fastest (and their over-reach exposes them
            // to complex recipes); the quick early advancement is also what
            // lets the monotone DP pin their early, too-complex actions at
            // the lowest level — reproducing the §VI-C anomaly.
            let advance_p = if level == 0 {
                1.5 * config.p_advance
            } else {
                config.p_advance
            };
            if level + 1 < COOKING_LEVELS && rng.gen::<f64>() < advance_p {
                level += 1;
            }
        }
        skills_by_user.push(skills);
    }

    let assembled = assemble(
        vec![
            FeatureKind::Categorical {
                cardinality: CATEGORIES.len() as u32,
            },
            FeatureKind::Categorical {
                cardinality: TIME_CLASSES.len() as u32,
            },
            FeatureKind::Categorical {
                cardinality: COST_CLASSES.len() as u32,
            },
            FeatureKind::Categorical {
                cardinality: INGREDIENTS.len() as u32,
            },
            FeatureKind::Count,
            FeatureKind::Count,
        ],
        vec![
            "category".into(),
            "cooking time".into(),
            "cooking cost".into(),
            "main ingredient".into(),
            "ingredient count".into(),
            "step count".into(),
        ],
        true,
        &item_features,
        &actions,
    )?;
    let recipe_complexity: Vec<u8> = assembled
        .items
        .new_to_old
        .iter()
        .map(|&old| complexity[old as usize])
        .collect();
    let true_skills: Vec<Vec<SkillLevel>> = assembled
        .users
        .new_to_old
        .iter()
        .map(|&old| skills_by_user[old as usize].clone())
        .collect();
    Ok(CookingData {
        dataset: assembled.dataset,
        recipe_complexity,
        true_skills,
    })
}

/// Picks an ordered class index concentrated near the complexity's
/// proportional position within `n_classes`.
fn pick_ordered_class<R: Rng + ?Sized>(
    rng: &mut R,
    complexity: usize,
    n_levels: usize,
    n_classes: usize,
) -> usize {
    let center = complexity as f64 / (n_levels - 1).max(1) as f64 * (n_classes - 1) as f64;
    let weights: Vec<f64> = (0..n_classes)
        .map(|k| (-((k as f64 - center).powi(2)) / 0.5).exp())
        .collect();
    sample_categorical(rng, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CookingConfig::test_scale(4)).unwrap();
        let b = generate(&CookingConfig::test_scale(4)).unwrap();
        assert_eq!(a.dataset.n_actions(), b.dataset.n_actions());
        assert_eq!(a.recipe_complexity, b.recipe_complexity);
    }

    #[test]
    fn schema_matches_paper_features() {
        let data = generate(&CookingConfig::test_scale(1)).unwrap();
        let schema = data.dataset.schema();
        assert_eq!(schema.len(), 7);
        assert_eq!(schema.name(features::ID), "item id");
        assert!(schema.name(features::TIME).contains("time"));
        assert!(schema.name(features::N_STEPS).contains("step"));
    }

    #[test]
    fn complexity_drives_time_and_steps() {
        let data = generate(&CookingConfig::test_scale(2)).unwrap();
        let mean_steps = |c: u8| -> f64 {
            let vals: Vec<f64> = data
                .dataset
                .items()
                .iter()
                .zip(&data.recipe_complexity)
                .filter(|(_, &rc)| rc == c)
                .map(|(f, _)| match f[features::N_STEPS] {
                    FeatureValue::Count(k) => k as f64,
                    _ => panic!("expected count"),
                })
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean_steps(5) > mean_steps(1) + 4.0);
    }

    #[test]
    fn mid_level_users_respect_capacity() {
        let data = generate(&CookingConfig::test_scale(3)).unwrap();
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if s >= 3 {
                    // Levels ≥ 3 never select above their capacity.
                    let c = data.recipe_complexity[action.item as usize];
                    assert!(c <= s, "complexity {c} above skill {s}");
                }
            }
        }
    }

    #[test]
    fn novices_overreach_when_enabled() {
        let data = generate(&CookingConfig::test_scale(6)).unwrap();
        // Level-1 users should sometimes select complexity-3 recipes.
        let mut overreach = 0usize;
        for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if s == 1 && data.recipe_complexity[action.item as usize] > 1 {
                    overreach += 1;
                }
            }
        }
        assert!(overreach > 0, "anomaly not reproduced");

        // And never when disabled.
        let mut cfg = CookingConfig::test_scale(6);
        cfg.novice_overreach = false;
        let clean = generate(&cfg).unwrap();
        for (seq, skills) in clean.dataset.sequences().iter().zip(&clean.true_skills) {
            for (action, &s) in seq.actions().iter().zip(skills) {
                if s == 1 {
                    assert_eq!(clean.recipe_complexity[action.item as usize], 1);
                }
            }
        }
    }

    #[test]
    fn ordered_class_concentrates_near_complexity() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut low_sum = 0usize;
        let mut high_sum = 0usize;
        for _ in 0..500 {
            low_sum += pick_ordered_class(&mut rng, 0, 5, 6);
            high_sum += pick_ordered_class(&mut rng, 4, 5, 6);
        }
        assert!(high_sum > low_sum + 500, "low {low_sum} high {high_sum}");
    }
}
