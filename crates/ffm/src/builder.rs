//! Feature layout for the paper's rating-prediction experiment
//! (Table XII): instances combine user ID, item ID, and optionally the
//! inferred skill level and the estimated item difficulty.
//!
//! Fields (when enabled, in order): user, item, skill, difficulty. The
//! `U+I` layout is the matrix-factorization-with-biases baseline; adding
//! skill (`U+I+S`), difficulty (`U+I+D`), or both (`U+I+S+D`) reproduces
//! the paper's ablation.

use crate::{FfmError, Instance};

/// Which optional feature groups to include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureLayout {
    /// Include the one-hot skill-level field (`+S`).
    pub use_skill: bool,
    /// Include the bucketized difficulty field (`+D`).
    pub use_difficulty: bool,
}

impl FeatureLayout {
    /// The `U+I` baseline.
    pub fn ui() -> Self {
        Self {
            use_skill: false,
            use_difficulty: false,
        }
    }

    /// `U+I+S`.
    pub fn uis() -> Self {
        Self {
            use_skill: true,
            use_difficulty: false,
        }
    }

    /// `U+I+D`.
    pub fn uid() -> Self {
        Self {
            use_skill: false,
            use_difficulty: true,
        }
    }

    /// `U+I+S+D`.
    pub fn uisd() -> Self {
        Self {
            use_skill: true,
            use_difficulty: true,
        }
    }

    /// Short display name ("U+I+S+D" etc.).
    pub fn name(&self) -> &'static str {
        match (self.use_skill, self.use_difficulty) {
            (false, false) => "U+I",
            (true, false) => "U+I+S",
            (false, true) => "U+I+D",
            (true, true) => "U+I+S+D",
        }
    }
}

/// Maps (user, item, skill, difficulty) tuples to FFM instances.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    layout: FeatureLayout,
    n_users: usize,
    n_items: usize,
    n_levels: usize,
    /// Number of difficulty buckets over `[1, S]`.
    n_buckets: usize,
}

impl InstanceBuilder {
    /// Creates a builder for the given universe sizes.
    pub fn new(
        layout: FeatureLayout,
        n_users: usize,
        n_items: usize,
        n_levels: usize,
    ) -> Result<Self, FfmError> {
        if n_users == 0 || n_items == 0 || n_levels == 0 {
            return Err(FfmError::InvalidConfig("empty universe"));
        }
        Ok(Self {
            layout,
            n_users,
            n_items,
            n_levels,
            n_buckets: 2 * n_levels,
        })
    }

    /// Total number of features in this layout.
    pub fn n_features(&self) -> usize {
        let mut n = self.n_users + self.n_items;
        if self.layout.use_skill {
            n += self.n_levels;
        }
        if self.layout.use_difficulty {
            n += self.n_buckets;
        }
        n
    }

    /// Number of fields in this layout.
    pub fn n_fields(&self) -> usize {
        2 + usize::from(self.layout.use_skill) + usize::from(self.layout.use_difficulty)
    }

    /// Bucket index for a difficulty in `[1, S]`.
    fn difficulty_bucket(&self, d: f64) -> usize {
        let clamped = d.clamp(1.0, self.n_levels as f64);
        let frac = (clamped - 1.0) / ((self.n_levels - 1).max(1) as f64);
        ((frac * self.n_buckets as f64) as usize).min(self.n_buckets - 1)
    }

    /// Builds one instance.
    ///
    /// `skill` (1-based) and `difficulty` are ignored unless the layout
    /// enables them.
    pub fn instance(
        &self,
        user: usize,
        item: usize,
        skill: u8,
        difficulty: f64,
        target: f64,
    ) -> Result<Instance, FfmError> {
        if user >= self.n_users {
            return Err(FfmError::FeatureOutOfBounds {
                field: 0,
                feature: user,
            });
        }
        if item >= self.n_items {
            return Err(FfmError::FeatureOutOfBounds {
                field: 1,
                feature: item,
            });
        }
        let mut features = Vec::with_capacity(self.n_fields());
        features.push((0, user, 1.0));
        features.push((1, self.n_users + item, 1.0));
        let mut field = 2;
        let mut offset = self.n_users + self.n_items;
        if self.layout.use_skill {
            let s = (skill as usize).clamp(1, self.n_levels) - 1;
            features.push((field, offset + s, 1.0));
            field += 1;
            offset += self.n_levels;
        }
        if self.layout.use_difficulty {
            let b = self.difficulty_bucket(difficulty);
            features.push((field, offset + b, 1.0));
        }
        Ok(Instance { features, target })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_names() {
        assert_eq!(FeatureLayout::ui().name(), "U+I");
        assert_eq!(FeatureLayout::uis().name(), "U+I+S");
        assert_eq!(FeatureLayout::uid().name(), "U+I+D");
        assert_eq!(FeatureLayout::uisd().name(), "U+I+S+D");
    }

    #[test]
    fn feature_counts_per_layout() {
        let b = |l| InstanceBuilder::new(l, 10, 20, 5).unwrap();
        assert_eq!(b(FeatureLayout::ui()).n_features(), 30);
        assert_eq!(b(FeatureLayout::uis()).n_features(), 35);
        assert_eq!(b(FeatureLayout::uid()).n_features(), 40);
        assert_eq!(b(FeatureLayout::uisd()).n_features(), 45);
        assert_eq!(b(FeatureLayout::ui()).n_fields(), 2);
        assert_eq!(b(FeatureLayout::uisd()).n_fields(), 4);
    }

    #[test]
    fn instance_feature_ids_are_disjoint_per_field() {
        let b = InstanceBuilder::new(FeatureLayout::uisd(), 10, 20, 5).unwrap();
        let inst = b.instance(3, 7, 2, 3.4, 4.5).unwrap();
        assert_eq!(inst.features.len(), 4);
        assert_eq!(inst.features[0], (0, 3, 1.0));
        assert_eq!(inst.features[1], (1, 17, 1.0));
        // Skill 2 → index 30 + 1.
        assert_eq!(inst.features[2], (2, 31, 1.0));
        // Difficulty in bounds.
        let (f, j, _) = inst.features[3];
        assert_eq!(f, 3);
        assert!((35..45).contains(&j));
        assert_eq!(inst.target, 4.5);
    }

    #[test]
    fn difficulty_buckets_are_monotone_and_bounded() {
        let b = InstanceBuilder::new(FeatureLayout::uid(), 2, 2, 5).unwrap();
        let mut prev = 0;
        for d in [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 9.0] {
            let bucket = b.difficulty_bucket(d);
            assert!(bucket >= prev, "bucket order violated at {d}");
            assert!(bucket < 10);
            prev = bucket;
        }
        assert_eq!(b.difficulty_bucket(0.0), 0);
        assert_eq!(b.difficulty_bucket(100.0), 9);
    }

    #[test]
    fn out_of_universe_rejected() {
        let b = InstanceBuilder::new(FeatureLayout::ui(), 5, 5, 3).unwrap();
        assert!(b.instance(5, 0, 1, 1.0, 1.0).is_err());
        assert!(b.instance(0, 5, 1, 1.0, 1.0).is_err());
        assert!(InstanceBuilder::new(FeatureLayout::ui(), 0, 5, 3).is_err());
    }

    #[test]
    fn skill_out_of_range_is_clamped() {
        let b = InstanceBuilder::new(FeatureLayout::uis(), 5, 5, 3).unwrap();
        let low = b.instance(0, 0, 0, 1.0, 1.0).unwrap();
        let high = b.instance(0, 0, 9, 1.0, 1.0).unwrap();
        assert_eq!(low.features[2].1, 10); // skill 1 → offset + 0
        assert_eq!(high.features[2].1, 12); // skill 3 → offset + 2
    }
}
