//! # upskill-ffm
//!
//! A from-scratch Field-aware Factorization Machine (Juan et al., RecSys
//! 2016) for the paper's rating-prediction experiment (Table XII), plus the
//! feature layouts (`U+I`, `U+I+S`, `U+I+D`, `U+I+S+D`) that add the skill
//! and difficulty levels learned by `upskill-core` as extra fields.
//! The `U+I` layout degenerates to matrix factorization with biases
//! (Koren et al.), the paper's baseline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod model;

use std::fmt;

pub use builder::{FeatureLayout, InstanceBuilder};
pub use model::{FfmConfig, FfmModel};

/// One training/evaluation instance: sparse `(field, feature, value)`
/// triples plus the regression target.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Active features: `(field index, feature index, value)`.
    pub features: Vec<(usize, usize, f64)>,
    /// Regression target (e.g. a rating in `[0, 5]`).
    pub target: f64,
}

/// Errors produced by FFM configuration and training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FfmError {
    /// A hyperparameter was out of range.
    InvalidConfig(&'static str),
    /// Training data was empty.
    EmptyTrainingSet,
    /// An instance referenced a field/feature outside the configured model.
    FeatureOutOfBounds {
        /// Field index of the offending feature.
        field: usize,
        /// Feature index.
        feature: usize,
    },
}

impl fmt::Display for FfmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfmError::InvalidConfig(what) => write!(f, "invalid FFM configuration: {what}"),
            FfmError::EmptyTrainingSet => write!(f, "FFM training set is empty"),
            FfmError::FeatureOutOfBounds { field, feature } => {
                write!(f, "feature {feature} in field {field} out of bounds")
            }
        }
    }
}

impl std::error::Error for FfmError {}
