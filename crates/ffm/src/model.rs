//! Field-aware factorization machine (Juan et al., RecSys 2016) for
//! regression, trained with per-coordinate AdaGrad on squared loss — the
//! paper's rating-prediction model (Table XII).
//!
//! Prediction for an instance with active features `{(f_j, j, x_j)}`:
//!
//! ```text
//! ŷ = w₀ + Σ_j w_j·x_j + Σ_{j₁<j₂} ⟨v_{j₁,f₂}, v_{j₂,f₁}⟩ · x_{j₁} x_{j₂}
//! ```
//!
//! With only user and item fields this degenerates to matrix factorization
//! with biases (Koren et al.), which is the paper's `U+I` baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FfmError, Instance};

/// FFM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FfmConfig {
    /// Total number of distinct features across all fields.
    pub n_features: usize,
    /// Number of fields.
    pub n_fields: usize,
    /// Latent dimensionality `k`.
    pub k: usize,
    /// AdaGrad learning rate η.
    pub eta: f64,
    /// L2 regularization λ.
    pub lambda: f64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Early-stop patience: stop after this many epochs without validation
    /// improvement (0 disables early stopping).
    pub patience: usize,
    /// Seed for latent-factor initialization and epoch shuffling.
    pub seed: u64,
}

impl FfmConfig {
    /// Reasonable defaults following Juan et al.: `k = 4`, `η = 0.1`,
    /// `λ = 2e−5`, 30 epochs, patience 3.
    pub fn new(n_features: usize, n_fields: usize) -> Self {
        Self {
            n_features,
            n_fields,
            k: 4,
            eta: 0.1,
            lambda: 2e-5,
            epochs: 30,
            patience: 3,
            seed: 1,
        }
    }

    fn validate(&self) -> Result<(), FfmError> {
        if self.n_features == 0 || self.n_fields == 0 || self.k == 0 {
            return Err(FfmError::InvalidConfig("zero-sized model dimension"));
        }
        if self.eta <= 0.0 || !self.eta.is_finite() {
            return Err(FfmError::InvalidConfig("non-positive learning rate"));
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(FfmError::InvalidConfig("negative regularization"));
        }
        if self.epochs == 0 {
            return Err(FfmError::InvalidConfig("zero epochs"));
        }
        Ok(())
    }
}

/// A trained FFM regressor.
#[derive(Debug, Clone)]
pub struct FfmModel {
    config: FfmConfig,
    w0: f64,
    w: Vec<f64>,
    /// Layout: `v[(feature * n_fields + field) * k + d]`.
    v: Vec<f64>,
    /// Training history: per-epoch `(train RMSE, validation RMSE)`.
    pub history: Vec<(f64, f64)>,
}

impl FfmModel {
    /// Trains an FFM on `train`, early-stopping on `valid` when patience is
    /// enabled. Returns the model at the best validation epoch.
    pub fn train(
        config: FfmConfig,
        train: &[Instance],
        valid: &[Instance],
    ) -> Result<Self, FfmError> {
        config.validate()?;
        if train.is_empty() {
            return Err(FfmError::EmptyTrainingSet);
        }
        for inst in train.iter().chain(valid) {
            for &(field, feature, _) in &inst.features {
                if field >= config.n_fields || feature >= config.n_features {
                    return Err(FfmError::FeatureOutOfBounds { field, feature });
                }
            }
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 1.0 / (config.k as f64).sqrt();
        let vk = config.n_features * config.n_fields * config.k;
        let mut model = FfmModel {
            config,
            w0: train.iter().map(|i| i.target).sum::<f64>() / train.len() as f64,
            w: vec![0.0; config.n_features],
            v: (0..vk).map(|_| rng.gen_range(0.0..scale * 0.1)).collect(),
            history: Vec::new(),
        };
        let mut g_w0 = 1.0f64;
        let mut g_w = vec![1.0f64; config.n_features];
        let mut g_v = vec![1.0f64; vk];

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut best: Option<(f64, Vec<f64>, Vec<f64>, f64)> = None; // (vrmse, w, v, w0)
        let mut stale = 0usize;

        for _epoch in 0..config.epochs {
            // Shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let inst = &train[idx];
                let pred = model.predict(inst);
                let err = pred - inst.target; // d(0.5·err²)/dŷ = err
                                              // Bias.
                g_w0 += err * err;
                model.w0 -= config.eta / g_w0.sqrt() * err;
                // Linear terms.
                for &(_, j, x) in &inst.features {
                    let g = err * x + config.lambda * model.w[j];
                    g_w[j] += g * g;
                    model.w[j] -= config.eta / g_w[j].sqrt() * g;
                }
                // Pairwise terms.
                let feats = &inst.features;
                for a in 0..feats.len() {
                    for b in a + 1..feats.len() {
                        let (fa, ja, xa) = feats[a];
                        let (fb, jb, xb) = feats[b];
                        let base_a = (ja * config.n_fields + fb) * config.k;
                        let base_b = (jb * config.n_fields + fa) * config.k;
                        for d in 0..config.k {
                            let va = model.v[base_a + d];
                            let vb = model.v[base_b + d];
                            let ga = err * vb * xa * xb + config.lambda * va;
                            let gb = err * va * xa * xb + config.lambda * vb;
                            g_v[base_a + d] += ga * ga;
                            g_v[base_b + d] += gb * gb;
                            model.v[base_a + d] -= config.eta / g_v[base_a + d].sqrt() * ga;
                            model.v[base_b + d] -= config.eta / g_v[base_b + d].sqrt() * gb;
                        }
                    }
                }
            }
            let train_rmse = model.rmse(train);
            let valid_rmse = if valid.is_empty() {
                train_rmse
            } else {
                model.rmse(valid)
            };
            model.history.push((train_rmse, valid_rmse));
            if config.patience > 0 {
                let improved = best
                    .as_ref()
                    .map(|(b, _, _, _)| valid_rmse < *b)
                    .unwrap_or(true);
                if improved {
                    best = Some((valid_rmse, model.w.clone(), model.v.clone(), model.w0));
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= config.patience {
                        break;
                    }
                }
            }
        }
        if let Some((_, w, v, w0)) = best {
            model.w = w;
            model.v = v;
            model.w0 = w0;
        }
        Ok(model)
    }

    /// Predicts the target for one instance.
    pub fn predict(&self, inst: &Instance) -> f64 {
        let mut y = self.w0;
        let feats = &inst.features;
        for &(_, j, x) in feats {
            y += self.w[j] * x;
        }
        for a in 0..feats.len() {
            for b in a + 1..feats.len() {
                let (fa, ja, xa) = feats[a];
                let (fb, jb, xb) = feats[b];
                let base_a = (ja * self.config.n_fields + fb) * self.config.k;
                let base_b = (jb * self.config.n_fields + fa) * self.config.k;
                let mut dot = 0.0;
                for d in 0..self.config.k {
                    dot += self.v[base_a + d] * self.v[base_b + d];
                }
                y += dot * xa * xb;
            }
        }
        y
    }

    /// RMSE over a set of instances.
    pub fn rmse(&self, data: &[Instance]) -> f64 {
        if data.is_empty() {
            return f64::NAN;
        }
        let sse: f64 = data
            .iter()
            .map(|i| {
                let e = self.predict(i) - i.target;
                e * e
            })
            .sum();
        (sse / data.len() as f64).sqrt()
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &FfmConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(features: Vec<(usize, usize, f64)>, target: f64) -> Instance {
        Instance { features, target }
    }

    /// Tiny 2-field dataset with a learnable interaction structure:
    /// target = bias(u) + bias(i) + affinity(u, i).
    fn toy_data(seed: u64) -> (Vec<Instance>, Vec<Instance>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_users = 6;
        let n_items = 5;
        let u_bias: Vec<f64> = (0..n_users).map(|u| (u as f64) * 0.1).collect();
        let i_bias: Vec<f64> = (0..n_items).map(|i| (i as f64) * 0.15).collect();
        let mut all = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for u in 0..n_users {
            for i in 0..n_items {
                for _ in 0..4 {
                    let affinity = if (u + i) % 2 == 0 { 0.4 } else { -0.4 };
                    let noise = rng.gen_range(-0.05..0.05);
                    let target = 2.5 + u_bias[u] + i_bias[i] + affinity + noise;
                    all.push(inst(vec![(0, u, 1.0), (1, n_users + i, 1.0)], target));
                }
            }
        }
        // Interleaved split so every user/item appears in training.
        let mut train = Vec::new();
        let mut valid = Vec::new();
        for (i, inst) in all.into_iter().enumerate() {
            if i % 5 == 4 {
                valid.push(inst);
            } else {
                train.push(inst);
            }
        }
        (train, valid)
    }

    #[test]
    fn config_validation() {
        assert!(FfmConfig {
            k: 0,
            ..FfmConfig::new(10, 2)
        }
        .validate()
        .is_err());
        assert!(FfmConfig {
            eta: 0.0,
            ..FfmConfig::new(10, 2)
        }
        .validate()
        .is_err());
        assert!(FfmConfig {
            epochs: 0,
            ..FfmConfig::new(10, 2)
        }
        .validate()
        .is_err());
        assert!(FfmConfig::new(10, 2).validate().is_ok());
    }

    #[test]
    fn training_reduces_rmse() {
        let (train, valid) = toy_data(3);
        let config = FfmConfig::new(11, 2);
        let model = FfmModel::train(config, &train, &valid).unwrap();
        let first = model.history.first().unwrap().0;
        assert!(model.rmse(&train) < first, "no improvement over epoch 1");
        // The interaction term is ±0.4; a bias-only model can't go below
        // ~0.4 RMSE, FFM with factors should.
        assert!(
            model.rmse(&valid) < 0.3,
            "validation rmse {}",
            model.rmse(&valid)
        );
    }

    #[test]
    fn interactions_beat_pure_bias_model() {
        let (train, valid) = toy_data(9);
        // k=1 with tiny init still learns interactions; compare against a
        // model whose factors are frozen at ~zero via huge regularization.
        let good = FfmModel::train(FfmConfig::new(11, 2), &train, &valid).unwrap();
        let crippled = FfmModel::train(
            FfmConfig {
                lambda: 10.0,
                ..FfmConfig::new(11, 2)
            },
            &train,
            &valid,
        )
        .unwrap();
        assert!(good.rmse(&valid) < crippled.rmse(&valid));
    }

    #[test]
    fn empty_training_set_rejected() {
        let config = FfmConfig::new(4, 2);
        assert!(matches!(
            FfmModel::train(config, &[], &[]),
            Err(FfmError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn out_of_bounds_features_rejected() {
        let config = FfmConfig::new(4, 2);
        let bad = vec![inst(vec![(0, 99, 1.0)], 1.0)];
        assert!(matches!(
            FfmModel::train(config, &bad, &[]),
            Err(FfmError::FeatureOutOfBounds { .. })
        ));
        let bad_field = vec![inst(vec![(7, 1, 1.0)], 1.0)];
        assert!(FfmModel::train(config, &bad_field, &[]).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let (train, valid) = toy_data(5);
        let a = FfmModel::train(FfmConfig::new(11, 2), &train, &valid).unwrap();
        let b = FfmModel::train(FfmConfig::new(11, 2), &train, &valid).unwrap();
        assert_eq!(a.predict(&train[0]), b.predict(&train[0]));
    }

    #[test]
    fn early_stopping_restores_best_epoch() {
        let (train, valid) = toy_data(7);
        let config = FfmConfig {
            patience: 2,
            epochs: 50,
            ..FfmConfig::new(11, 2)
        };
        let model = FfmModel::train(config, &train, &valid).unwrap();
        let best_hist = model
            .history
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        // The final model's validation RMSE equals the best seen (within
        // floating tolerance).
        assert!((model.rmse(&valid) - best_hist).abs() < 1e-9);
    }

    #[test]
    fn bias_initialized_to_target_mean() {
        let train = vec![inst(vec![(0, 0, 1.0)], 4.0), inst(vec![(0, 1, 1.0)], 2.0)];
        let config = FfmConfig {
            epochs: 1,
            ..FfmConfig::new(2, 1)
        };
        let model = FfmModel::train(config, &train, &[]).unwrap();
        // After one epoch the prediction should already be near 3 ± biases.
        let p = model.predict(&inst(vec![(0, 0, 1.0)], 0.0));
        assert!((p - 3.0).abs() < 1.5, "prediction {p}");
    }
}

#[cfg(test)]
mod gradient_tests {
    use super::*;

    /// Finite-difference check of the training gradient: perturbing any
    /// parameter by ±h must change 0.5·err² by approximately gradient·h.
    #[test]
    fn analytic_gradients_match_finite_differences() {
        let config = FfmConfig {
            k: 3,
            ..FfmConfig::new(6, 2)
        };
        let inst = Instance {
            features: vec![(0, 1, 1.0), (1, 4, 1.0)],
            target: 3.0,
        };
        // A fixed model with non-trivial parameters.
        let mut rng = StdRng::seed_from_u64(99);
        let vk = config.n_features * config.n_fields * config.k;
        let model = FfmModel {
            config,
            w0: 0.5,
            w: (0..config.n_features)
                .map(|_| rng.gen_range(-0.5..0.5))
                .collect(),
            v: (0..vk).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            history: Vec::new(),
        };
        let loss = |m: &FfmModel| {
            let e = m.predict(&inst) - inst.target;
            0.5 * e * e
        };
        let err = model.predict(&inst) - inst.target;
        let h = 1e-6;

        // Linear weight gradient: err · x.
        for &(_, j, x) in &inst.features {
            let mut plus = model.clone();
            plus.w[j] += h;
            let numeric = (loss(&plus) - loss(&model)) / h;
            let analytic = err * x;
            assert!(
                (numeric - analytic).abs() < 1e-4,
                "w[{j}]: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Latent factor gradient: err · v_other · x_a · x_b.
        let (fa, ja, xa) = inst.features[0];
        let (fb, jb, xb) = inst.features[1];
        for d in 0..model.config.k {
            let base_a = (ja * model.config.n_fields + fb) * model.config.k;
            let base_b = (jb * model.config.n_fields + fa) * model.config.k;
            let mut plus = model.clone();
            plus.v[base_a + d] += h;
            let numeric = (loss(&plus) - loss(&model)) / h;
            let analytic = err * model.v[base_b + d] * xa * xb;
            assert!(
                (numeric - analytic).abs() < 1e-4,
                "v[{d}]: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Bias gradient: err.
        let mut plus = model.clone();
        plus.w0 += h;
        let numeric = (loss(&plus) - loss(&model)) / h;
        assert!((numeric - err).abs() < 1e-4);
    }
}
