//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no network access and no
//! pre-fetched registry, so the real serde cannot be compiled. This crate
//! provides the small surface the workspace actually uses: `Serialize` /
//! `Deserialize` traits (value-tree based rather than visitor based), a JSON
//! `Value` model shared with the `serde_json` stand-in, and derive macros for
//! plain structs and enums. The only `#[serde(...)]` attribute supported is
//! `#[serde(default)]` on named struct fields (missing keys fall back to
//! `Default::default()`); any other serde attribute is a compile error.
//!
//! The trait shape is intentionally simpler than real serde: serialization
//! produces a [`Value`] tree and deserialization consumes one. The derive
//! macros and `serde_json` front-end keep the call-site API (`#[derive]`,
//! `to_string`, `from_str`) source compatible for this workspace.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style value tree, shared by `serde` and `serde_json`.
///
/// Objects preserve insertion order (fields serialize in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (linear scan; objects are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the number as `f64` if this is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) => u64::try_from(n).ok(),
            Value::U64(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the element slice if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering (matches `serde_json::to_string`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::F64(x) if !x.is_finite() => f.write_str("null"),
            Value::F64(x) => write!(f, "{x:?}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => {
                let mut buf = [0u8; 4];
                f.write_str(c.encode_utf8(&mut buf))?;
            }
        }
    }
    f.write_str("\"")
}

/// Deserialization error: a human-readable message with no span tracking.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter exists only for source compatibility with bounds
/// like `for<'de> Deserialize<'de>`; this stand-in never borrows from the
/// input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Hook for a missing object field; only `Option<T>` succeeds here.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

/// Looks up and deserializes an object field (used by derived impls).
pub fn field<'de, T: Deserialize<'de>>(
    pairs: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::missing_field(name),
    }
}

/// Looks up and deserializes an object field, substituting
/// `Default::default()` when the key is absent. Used by derived impls for
/// fields annotated `#[serde(default)]`, so documents written before a
/// field existed keep deserializing.
pub fn field_or_default<'de, T: Deserialize<'de> + Default>(
    pairs: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty => $variant:ident as $repr:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $repr)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .map(|n| n as i128)
                    .or_else(|| v.as_u64().map(|n| n as i128))
                    .ok_or_else(|| {
                        DeError(format!("expected integer, got {v:?}"))
                    })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_serde_int! {
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    isize => I64 as i64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Non-finite floats serialize as null (JSON has no literal).
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| DeError(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de>
            for ($($name,)+)
        {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| {
                    DeError(format!("expected tuple array, got {v:?}"))
                })?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(DeError(format!(
                        "expected {expected}-tuple, got {} elements",
                        a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
