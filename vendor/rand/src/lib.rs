//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `RngCore`, `Rng` (`gen`, `gen_range`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` backed by SplitMix64.
//! Streams are deterministic per seed but do NOT match the real `rand`
//! crate's StdRng (ChaCha12); the workspace only relies on seeds being
//! reproducible within a build, not on matching external streams.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can sample a "standard" value from an RNG (the subset of
/// `Standard: Distribution<T>` the workspace uses).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types `gen_range` can sample uniformly. The single blanket impl of
/// [`SampleRange`] over `Range<T>` / `RangeInclusive<T>` is what lets
/// untyped literals like `rng.gen_range(0..5)` infer their type from the
/// call site (mirroring the real crate's `SampleUniform` design).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as StandardSample>::standard_sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the exclusive endpoint.
                if v >= hi {
                    <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON)
                } else {
                    <$t>::max(v, lo)
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as StandardSample>::standard_sample(rng);
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard sample (e.g. `f64` uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    ///
    /// Not the real crate's ChaCha12-based StdRng; streams differ but are
    /// stable for a given seed, which is all the workspace requires.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            };
            // Warm up so small seeds decorrelate quickly.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_impl(), b.next_impl());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_impl(), c.next_impl());
    }

    trait NextImpl {
        fn next_impl(&mut self) -> u64;
    }

    impl NextImpl for StdRng {
        fn next_impl(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let n: usize = rng.gen_range(0..5);
            assert!(n < 5);
            let m: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&m));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unsized_rng_usable() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynrng)));
    }
}
