//! Offline stand-in for `serde_json`.
//!
//! Provides `to_string` / `to_string_pretty` / `from_str` plus a [`Value`]
//! type (re-exported from the `serde` stand-in, which owns the value tree so
//! derived impls and this front-end agree). The grammar is standard JSON;
//! non-finite floats serialize as `null`.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<'a, T: Deserialize<'a>>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::U64(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` prints the shortest representation that round-trips, and always
    // includes a `.0` or exponent for integral values, keeping the number a
    // float on re-parse.
    let _ = std::fmt::Write::write_fmt(out, format_args!("{x:?}"));
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_nested() {
        let v = vec![vec![1.0f64, 2.5], vec![3.0]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_null() {
        let v: Vec<Option<f64>> = vec![Some(1.0), None];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.0,null]");
        let back: Vec<Option<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = vec![(1u32, 2.5f64)];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
