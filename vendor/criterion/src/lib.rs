//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness exposing the API surface the workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Reports mean/min time per
//! iteration on stdout; no statistics, plots, or baselines.
//!
//! Setting `CRITERION_SAMPLE_SIZE` to a positive integer overrides every
//! benchmark's sample count — CI smoke jobs run the full bench suite with
//! `CRITERION_SAMPLE_SIZE=1` to catch bench-code rot without paying for
//! real measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining an optional function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Parses a `CRITERION_SAMPLE_SIZE` value: a positive integer overrides
/// every in-code sample-size setting; anything else is ignored.
fn parse_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The environment override, if any. Checked per benchmark so CI smoke
/// jobs (`CRITERION_SAMPLE_SIZE=1 cargo bench`) can pin the sample count
/// without editing bench code or plumbing config through the macros.
fn sample_size_override() -> Option<usize> {
    parse_override(std::env::var("CRITERION_SAMPLE_SIZE").ok().as_deref())
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let samples = sample_size_override().unwrap_or(samples);
    // Calibrate: run once to estimate cost, then choose an iteration count
    // aiming at ~10ms per sample (capped) so fast routines aren't all noise.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "bench {name:<50} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(min),
        samples,
        iters
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::parse_override;

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(None), None);
        assert_eq!(parse_override(Some("")), None);
        assert_eq!(parse_override(Some("0")), None);
        assert_eq!(parse_override(Some("-3")), None);
        assert_eq!(parse_override(Some("abc")), None);
        assert_eq!(parse_override(Some("1")), Some(1));
        assert_eq!(parse_override(Some(" 25 ")), Some(25));
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
