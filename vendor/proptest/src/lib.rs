//! Offline stand-in for `proptest`.
//!
//! Runs each property as N seeded random cases (no shrinking, no persisted
//! failure files). Supports the strategy surface this workspace uses: numeric
//! ranges, tuples of strategies, and `proptest::collection::vec` with fixed
//! or ranged sizes, plus the `proptest!`, `prop_assert!`, `prop_assert_eq!`
//! and `prop_assume!` macros.

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Why a test case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not a failure.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

/// Outcome alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        v.max(self.start)
            .min(f64::from_bits(self.end.to_bits() - 1))
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        (lo + rng.unit_f64() * (hi - lo)).clamp(lo, hi)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeSpec {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeSpec for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for vectors with element strategy `S` and size spec `Z`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vector strategy: `vec(element_strategy, len)` or
    /// `vec(element_strategy, lo..hi)`.
    pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs a property body over `cases` accepted random cases.
///
/// Called by the expansion of [`proptest!`]; panics (failing the enclosing
/// `#[test]`) on the first failed case, reporting the case number and seed.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Stable per-property seed: hash of the property name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::new(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 64 + 1024;
    while accepted < config.cases {
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected}) after {accepted} accepted cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {accepted} \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@accum ($config) $($rest)*);
    };
    (
        #[test]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@accum ($crate::ProptestConfig::default())
            #[test] $($rest)*);
    };
    (@accum ($config:expr)) => {};
    (@accum ($config:expr)
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config = $config;
            $crate::run_cases(
                stringify!($name),
                &config,
                |prop_rng| -> $crate::TestCaseResult {
                    $(let $arg = $crate::Strategy::generate(
                        &($strategy), prop_rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@accum ($config) $($rest)*);
    };
}

/// Asserts inside a property; failure reports the case instead of panicking
/// directly, matching real proptest's control flow.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {l:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
