//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote`, which are unavailable
//! offline). Supports non-generic structs (named, tuple, unit) and enums
//! with unit / tuple / struct variants — the shapes this workspace uses.
//! The only `#[serde(...)]` attribute supported is `#[serde(default)]` on
//! named fields; any other serde attribute is rejected at expansion time
//! rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct NamedField {
    name: String,
    /// Field carried `#[serde(default)]`: a missing key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic types");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("expected enum body, found {t:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Recognizes a field attribute body (the group after `#`). Returns `true`
/// for exactly `[serde(default)]`; panics on any other `#[serde(...)]`
/// form so unsupported attributes fail loudly; returns `false` for
/// non-serde attributes (doc comments etc.).
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    if let Some(TokenTree::Group(args)) = tokens.get(1) {
        let inner: Vec<TokenTree> = args.stream().into_iter().collect();
        if inner.len() == 1 {
            if let TokenTree::Ident(id) = &inner[0] {
                if id.to_string() == "default" {
                    return true;
                }
            }
        }
    }
    panic!("serde stand-in derive only supports #[serde(default)], found #{group}");
}

fn parse_named_fields(body: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        // Field-level attribute scan: note `#[serde(default)]`, skip the
        // rest (doc comments, visibility).
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if attr_is_serde_default(g) {
                            default = true;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(
                        tokens.get(i),
                        Some(TokenTree::Group(g))
                            if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => names.push(NamedField {
                name: id.to_string(),
                default,
            }),
            t => panic!("expected field name, found {t}"),
        }
        i += 1;
        // Skip `:` and the type, up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, found {t}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip any discriminant and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("f{k}")).collect()
}

fn serialize_fields_expr(fields: &Fields, prefix: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&{prefix}{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Fields::Tuple(1) => {
            format!("::serde::Serialize::to_value(&{prefix}0)")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&{prefix}{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = serialize_fields_expr(fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(\"{vname}\".to_string())"
                        ),
                        Fields::Tuple(n) => {
                            let binders = tuple_binders(*n);
                            let inner = match *n {
                                1 => "::serde::Serialize::to_value(f0)".to_string(),
                                _ => format!(
                                    "::serde::Value::Array(vec![{}])",
                                    binders
                                        .iter()
                                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            };
                            format!(
                                "{name}::{vname}({}) => \
                                 ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), {inner})])",
                                binders.join(", ")
                            )
                        }
                        Fields::Named(field_names) => {
                            let pairs: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            let binders: Vec<&str> =
                                field_names.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{vname} {{ {} }} => \
                                 ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), \
                                 ::serde::Value::Object(vec![{}]))])",
                                binders.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{ {} }}\n\
                   }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().unwrap()
}

fn deserialize_named_expr(names: &[NamedField], obj: &str) -> String {
    let inits: Vec<String> = names
        .iter()
        .map(|f| {
            let helper = if f.default {
                "field_or_default"
            } else {
                "field"
            };
            let f = &f.name;
            format!("{f}: ::serde::{helper}({obj}, \"{f}\")?")
        })
        .collect();
    inits.join(", ")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => format!(
                    "let obj = v.as_object().ok_or_else(|| \
                       ::serde::DeError(format!(\
                       \"expected object for {name}, got {{v:?}}\")))?;\n\
                     Ok({name} {{ {} }})",
                    deserialize_named_expr(names, "obj")
                ),
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&a[{k}])?"))
                        .collect();
                    format!(
                        "let a = v.as_array().ok_or_else(|| \
                           ::serde::DeError(format!(\
                           \"expected array for {name}, got {{v:?}}\")))?;\n\
                         if a.len() != {n} {{ return Err(::serde::DeError(\
                           format!(\"expected {n} elements for {name}\"))); \
                         }}\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = v; Ok({name})"),
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                   fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     {body}\n\
                   }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::\
                                         from_value(&a[{k}])?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                   let a = inner.as_array().ok_or_else(|| \
                                     ::serde::DeError(\
                                     \"expected array payload\"\
                                     .to_string()))?;\n\
                                   if a.len() != {n} {{ \
                                     return Err(::serde::DeError(format!(\
                                     \"expected {n} elements for \
                                      {name}::{vname}\"))); }}\n\
                                   Ok({name}::{vname}({}))\n\
                                 }},",
                                elems.join(", ")
                            )
                        }
                        Fields::Named(field_names) => format!(
                            "\"{vname}\" => {{\n\
                               let obj = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError(\
                                 \"expected object payload\"\
                                 .to_string()))?;\n\
                               Ok({name}::{vname} {{ {} }})\n\
                             }},",
                            deserialize_named_expr(field_names, "obj")
                        ),
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                   fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     if let Some(s) = v.as_str() {{\n\
                       return match s {{\n\
                         {}\n\
                         other => Err(::serde::DeError(format!(\
                           \"unknown variant `{{other}}` for {name}\"))),\n\
                       }};\n\
                     }}\n\
                     let pairs = v.as_object().ok_or_else(|| \
                       ::serde::DeError(format!(\
                       \"expected enum value for {name}, got {{v:?}}\")))?;\n\
                     if pairs.len() != 1 {{\n\
                       return Err(::serde::DeError(format!(\
                         \"expected single-key enum object for {name}\")));\n\
                     }}\n\
                     let (tag, inner) = &pairs[0];\n\
                     let _ = inner;\n\
                     match tag.as_str() {{\n\
                       {}\n\
                       other => Err(::serde::DeError(format!(\
                         \"unknown variant `{{other}}` for {name}\"))),\n\
                     }}\n\
                   }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    code.parse().unwrap()
}
