//! Rating prediction with skill and difficulty features: shows how the
//! levels learned by the progression model improve a field-aware
//! factorization machine, mirroring the paper's Table XII ablation.
//!
//! ```sh
//! cargo run --release --example rating_prediction
//! ```

use upskill_core::difficulty::generation_difficulty_all;
use upskill_core::prelude::*;
use upskill_datasets::beer::{generate, BeerConfig, BEER_LEVELS};
use upskill_ffm::{FeatureLayout, FfmConfig, FfmModel, Instance, InstanceBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Beer reviews carry ratings; learn skill + difficulty first.
    let data = generate(&BeerConfig::test_scale(55))?;
    println!(
        "{} reviewers, {} beers, {} rated reviews",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );
    let skill = train(
        &data.dataset,
        &TrainConfig::new(BEER_LEVELS).with_min_init_actions(50),
    )?;
    let difficulty = generation_difficulty_all(
        &skill.model,
        &data.dataset,
        SkillPrior::Empirical,
        Some(&skill.assignments),
    )?;

    // Assemble instances: (user, item, assigned skill, item difficulty,
    // rating), split 80/10/10 into train/valid/test.
    let n_users = data.dataset.n_users();
    let n_items = data.dataset.n_items();
    for layout in [
        FeatureLayout::ui(),
        FeatureLayout::uis(),
        FeatureLayout::uid(),
        FeatureLayout::uisd(),
    ] {
        let builder = InstanceBuilder::new(layout, n_users, n_items, BEER_LEVELS)?;
        let mut train_set: Vec<Instance> = Vec::new();
        let mut valid = Vec::new();
        let mut test = Vec::new();
        let mut k = 0usize;
        for (u, seq) in data.dataset.sequences().iter().enumerate() {
            let levels = &skill.assignments.per_user[u];
            let ratings = &data.ratings[u];
            for ((action, &s), &rating) in seq.actions().iter().zip(levels).zip(ratings) {
                let inst = builder.instance(
                    u,
                    action.item as usize,
                    s,
                    difficulty[action.item as usize],
                    rating,
                )?;
                match k % 10 {
                    8 => valid.push(inst),
                    9 => test.push(inst),
                    _ => train_set.push(inst),
                }
                k += 1;
            }
        }
        let config = FfmConfig {
            epochs: 20,
            seed: 5,
            ..FfmConfig::new(builder.n_features(), builder.n_fields())
        };
        let model = FfmModel::train(config, &train_set, &valid)?;
        println!(
            "{:8}  test RMSE {:.4}  ({} epochs run)",
            layout.name(),
            model.rmse(&test),
            model.history.len()
        );
    }
    println!(
        "\nExpected shape (paper Table XII): U+I+S and U+I+D beat U+I, and \
         U+I+S+D is best — skill and difficulty are complementary signals."
    );
    Ok(())
}
