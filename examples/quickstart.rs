//! Quickstart: train a skill model on synthetic action sequences, inspect
//! the learned progression, and estimate item difficulty.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use upskill_core::difficulty::generation_difficulty;
use upskill_core::prelude::*;
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::pearson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small synthetic dataset with known ground truth:
    //    users progress through 5 skill levels, selecting items within
    //    their capacity (paper §VI-A).
    let config = SyntheticConfig {
        n_users: 300,
        n_items: 1_000,
        n_levels: 5,
        mean_sequence_len: 50.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 7,
    };
    let data = generate(&config)?;
    println!(
        "dataset: {} users, {} items, {} actions",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    // 2. Train the multi-faceted skill model: alternating monotone-DP
    //    assignment and closed-form parameter updates (paper §IV).
    let train_config = TrainConfig::new(5).with_min_init_actions(50);
    let result = train(&data.dataset, &train_config)?;
    println!(
        "trained in {} iterations (converged: {}), log-likelihood {:.1}",
        result.trace.len(),
        result.converged,
        result.log_likelihood
    );
    assert!(result.assignments.is_monotone(), "skills never decrease");

    // 3. Compare the learned skill levels against the generator's truth.
    let predicted: Vec<f64> = result
        .assignments
        .per_user
        .iter()
        .flat_map(|seq| seq.iter().map(|&s| s as f64))
        .collect();
    let truth = data.flat_true_skills();
    println!(
        "skill recovery: Pearson r = {:.3}",
        pearson(&predicted, &truth)?
    );

    // 4. Estimate item difficulty on the same 1..=S scale (paper §V) and
    //    check it tracks the ground-truth difficulty.
    let mut est = Vec::new();
    for item in 0..data.dataset.n_items() as u32 {
        est.push(generation_difficulty(
            &result.model,
            data.dataset.item_features(item),
            SkillPrior::Empirical,
            Some(&result.assignments),
        )?);
    }
    println!(
        "difficulty recovery: Pearson r = {:.3}",
        pearson(&est, &data.true_difficulty)?
    );

    // 5. A recommendation-for-upskilling sketch: for a user at level s,
    //    surface items slightly above their current capability.
    let user = 0usize;
    let current = *result.assignments.per_user[user].last().expect("nonempty");
    let target = current as f64 + 0.3;
    let mut best: Vec<(u32, f64)> = est
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as u32, (d - target).abs()))
        .collect();
    best.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "user 0 is at level {current}; top 5 moderately-challenging items \
         (difficulty ~ {target:.1}): {:?}",
        best.iter().take(5).map(|&(i, _)| i).collect::<Vec<_>>()
    );
    Ok(())
}
