//! End-to-end cooking scenario: simulate a recipe community, learn cooking
//! skill progression, estimate recipe difficulty, and recommend the next
//! recipes that would stretch (but not overwhelm) a given cook.
//!
//! ```sh
//! cargo run --release --example cooking_upskilling
//! ```

use upskill_core::analysis::level_means;
use upskill_core::difficulty::{empirical_prior, generation_difficulty_with_prior};
use upskill_core::prelude::*;
use upskill_datasets::cooking::{features, generate, CookingConfig, COOKING_LEVELS, TIME_CLASSES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate a recipe-sharing community (a stand-in for Rakuten Recipe).
    let data = generate(&CookingConfig {
        n_users: 400,
        n_recipes: 1_200,
        dedicated_fraction: 0.25,
        casual_mean_len: 12.0,
        dedicated_mean_len: 70.0,
        p_advance: 0.05,
        novice_overreach: true,
        seed: 21,
    })?;
    println!(
        "cooking community: {} cooks, {} recipes, {} cooking reports",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    // Learn the 5-level cooking-skill model.
    let result = train(
        &data.dataset,
        &TrainConfig::new(COOKING_LEVELS).with_min_init_actions(50),
    )?;
    println!("trained in {} iterations", result.trace.len());

    // What did the model learn? Step counts should grow with skill
    // (with the paper's level-1 over-reach anomaly).
    let step_means = level_means(&result.model, features::N_STEPS)?;
    println!(
        "mean recipe steps per skill level: {:?}",
        step_means
            .iter()
            .map(|m| format!("{m:.1}"))
            .collect::<Vec<_>>()
    );

    // Estimate every recipe's difficulty with the empirical-prior
    // generation estimator (robust for rarely-cooked recipes).
    let prior = empirical_prior(&result.assignments, COOKING_LEVELS)?;
    let difficulty: Vec<f64> = (0..data.dataset.n_items() as u32)
        .map(|i| {
            generation_difficulty_with_prior(&result.model, data.dataset.item_features(i), &prior)
        })
        .collect::<Result<_, _>>()?;

    // Pick a mid-journey cook and recommend upskilling recipes: difficulty
    // in (current skill, current skill + 0.7], excluding already-cooked.
    let cook = data
        .dataset
        .sequences()
        .iter()
        .position(|s| s.len() >= 20)
        .expect("an active cook");
    let skill = *result.assignments.per_user[cook].last().expect("nonempty") as f64;
    let cooked: std::collections::HashSet<u32> = data.dataset.sequences()[cook]
        .actions()
        .iter()
        .map(|a| a.item)
        .collect();
    let mut candidates: Vec<(u32, f64)> = difficulty
        .iter()
        .enumerate()
        .filter(|&(i, &d)| !cooked.contains(&(i as u32)) && d > skill + 0.15 && d <= skill + 0.7)
        .map(|(i, &d)| (i as u32, d))
        .collect();
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "\ncook #{cook} is at skill level {skill:.0} after {} reports",
        data.dataset.sequences()[cook].len()
    );
    println!(
        "recommended recipes to level up (difficulty in ({skill:.0}, {:.1}]):",
        skill + 0.7
    );
    for &(recipe, d) in candidates.iter().take(5) {
        let feats = data.dataset.item_features(recipe);
        let time = match feats[features::TIME] {
            FeatureValue::Categorical(t) => TIME_CLASSES[t as usize],
            _ => "?",
        };
        let steps = match feats[features::N_STEPS] {
            FeatureValue::Count(k) => k,
            _ => 0,
        };
        println!(
            "  recipe #{recipe}: difficulty {d:.2}, {steps} steps, cooking time {time} \
             (true complexity {})",
            data.recipe_complexity[recipe as usize]
        );
    }

    // Sanity: estimated difficulty should track the simulator's hidden
    // recipe complexity.
    let complexity: Vec<f64> = data.recipe_complexity.iter().map(|&c| c as f64).collect();
    println!(
        "\ndifficulty vs hidden complexity: Pearson r = {:.3}",
        upskill_eval::pearson(&difficulty, &complexity)?
    );
    Ok(())
}
