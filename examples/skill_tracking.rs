//! Live skill tracking and the forgetting extension: follow a single
//! learner in real time with the O(F·S)-per-action online tracker, then
//! show how the §VII forgetting-aware assignment recognizes skill decay
//! after a long break where the monotone model cannot.
//!
//! ```sh
//! cargo run --release --example skill_tracking
//! ```

use upskill_core::assign::assign_sequence;
use upskill_core::forgetting::{assign_sequence_with_forgetting, ForgettingConfig};
use upskill_core::prelude::*;
use upskill_datasets::forgetting::{generate, ForgettingScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic world where skills decay after long breaks.
    let cfg = ForgettingScenarioConfig {
        n_users: 120,
        n_items: 400,
        ..ForgettingScenarioConfig::default_scale(17)
    };
    let scenario = generate(&cfg)?;
    println!(
        "world: {} users, {} items, {} decay events injected",
        scenario.dataset.n_users(),
        scenario.dataset.n_items(),
        scenario.n_decays
    );

    // Train the standard model on everything.
    let result = train(
        &scenario.dataset,
        &TrainConfig::new(cfg.n_levels).with_min_init_actions(40),
    )?;

    // Pick a user whose true skill actually decayed.
    let user = scenario
        .true_skills
        .iter()
        .position(|s| s.windows(2).any(|w| w[1] < w[0]))
        .expect("a decaying user exists");
    let seq = &scenario.dataset.sequences()[user];
    let truth = &scenario.true_skills[user];

    // 1. Online tracking: feed actions one by one.
    println!("\nonline tracking of user #{user} ({} actions):", seq.len());
    let mut tracker = OnlineTracker::new(cfg.n_levels)?;
    let mut online_levels = Vec::new();
    for action in seq.actions() {
        let level = tracker.observe(&result.model, scenario.dataset.item_features(action.item))?;
        online_levels.push(level);
    }
    let weights = tracker.level_weights();
    println!(
        "  final online level: {} (posterior weights {:?})",
        online_levels.last().unwrap(),
        weights
            .iter()
            .map(|w| format!("{w:.2}"))
            .collect::<Vec<_>>()
    );

    // 2. Batch monotone vs forgetting-aware assignment.
    let monotone = assign_sequence(&result.model, &scenario.dataset, seq)?;
    let fcfg = ForgettingConfig {
        halflife: cfg.break_length as f64 / 5.0,
        max_decay: 0.45,
        advance_prob: 0.3,
    };
    let forgetting = assign_sequence_with_forgetting(&result.model, &fcfg, &scenario.dataset, seq)?;

    // Render the three trajectories side by side for the first 40 actions.
    println!("\n  t   truth  monotone  forgetting  gap-before");
    let times: Vec<i64> = seq.actions().iter().map(|a| a.time).collect();
    for t in 0..seq.len().min(40) {
        let gap = if t == 0 { 0 } else { times[t] - times[t - 1] };
        let marker = if gap > 100 { "  <-- long break" } else { "" };
        println!(
            "  {t:3}   {:5}  {:8}  {:10}{marker}",
            truth[t], monotone.levels[t], forgetting.levels[t]
        );
    }

    // Quantify: which assignment tracks the decaying truth better?
    let err = |levels: &[u8]| -> f64 {
        levels
            .iter()
            .zip(truth)
            .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
            .sum::<f64>()
            / levels.len() as f64
    };
    println!(
        "\n  mean squared error vs truth: monotone {:.3}, forgetting-aware {:.3}",
        err(&monotone.levels),
        err(&forgetting.levels)
    );
    println!(
        "  (the monotone model can never lower a level, so after a break it \
         must overestimate until the user catches back up)"
    );
    Ok(())
}
