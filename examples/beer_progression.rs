//! Appreciation-skill analysis in the beer domain: learn how reviewers'
//! palates develop, then print the per-level ABV trend and the styles that
//! separate novices from connoisseurs (the paper's Fig. 6 / Table III).
//!
//! ```sh
//! cargo run --release --example beer_progression
//! ```

use upskill_core::analysis::{level_means, top_skilled, top_unskilled};
use upskill_core::prelude::*;
use upskill_datasets::beer::{features, generate, BeerConfig, BEER_LEVELS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&BeerConfig::test_scale(33))?;
    println!(
        "beer community: {} reviewers, {} beers, {} reviews",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    let result = train(
        &data.dataset,
        &TrainConfig::new(BEER_LEVELS).with_min_init_actions(50),
    )?;
    println!("trained in {} iterations\n", result.trace.len());

    // ABV trend: acquired taste drifts toward stronger beers.
    let abv = level_means(&result.model, features::ABV)?;
    println!("mean ABV per skill level:");
    for (s, m) in abv.iter().enumerate() {
        let bar = "#".repeat((m * 4.0) as usize);
        println!("  s={} {:5.2}% {}", s + 1, m, bar);
    }

    // Style dominance: which styles are typical of each extreme?
    let novice = top_unskilled(&result.model, features::STYLE, 5)?;
    let expert = top_skilled(&result.model, features::STYLE, 5)?;
    println!("\nstyles dominated by novices:");
    for e in &novice {
        println!(
            "  {:24} score {:+.3} (tier {})",
            data.style_names[e.value as usize], e.score, data.style_tiers[e.value as usize]
        );
    }
    println!("styles dominated by connoisseurs:");
    for e in &expert {
        println!(
            "  {:24} score {:+.3} (tier {})",
            data.style_names[e.value as usize], e.score, data.style_tiers[e.value as usize]
        );
    }

    // How long does each level last? (per-user dwell time at each level)
    let mut dwell = vec![0usize; BEER_LEVELS];
    for seq in &result.assignments.per_user {
        for &s in seq {
            dwell[s as usize - 1] += 1;
        }
    }
    println!("\nactions spent per skill level: {dwell:?}");
    Ok(())
}
